//===- tests/PredictTest.cpp - Prediction + confirmation tests ------------===//

#include "analysis/Predict.h"
#include "isa/Assembler.h"
#include "predict/Confirm.h"
#include "support/Json.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::analysis;
using namespace svd::predict;
using isa::Program;

namespace {

Program asmProg(const std::string &Src) { return isa::assembleOrDie(Src); }

/// The Figure 1 lock-gap shape: read under the lock, write back after
/// releasing it.
const char *AtomicityGap = R"(
.global refcount
.lock tbl_lock
.thread worker x2
  lock @tbl_lock
  ld r1, [@refcount]
  addi r1, r1, 1
  unlock @tbl_lock
  st r1, [@refcount]
  halt
)";

/// The repaired twin: the store stays inside the critical section.
const char *AtomicityGapFixed = R"(
.global refcount
.lock tbl_lock
.thread worker x2
  lock @tbl_lock
  ld r1, [@refcount]
  addi r1, r1, 1
  st r1, [@refcount]
  unlock @tbl_lock
  halt
)";

} // namespace

//===----------------------------------------------------------------------===//
// Static prediction
//===----------------------------------------------------------------------===//

TEST(Predict, LockGapYieldsOneLostUpdate) {
  Program P = asmProg(AtomicityGap);
  std::vector<Prediction> Ps = predictProgram(P);
  ASSERT_EQ(Ps.size(), 1u);
  const Prediction &Pr = Ps[0];
  EXPECT_EQ(Pr.Kind, PatternKind::LostUpdate);
  EXPECT_EQ(Pr.FirstPc, 1u);  // the ld under the lock
  EXPECT_EQ(Pr.CheckPc, 4u);  // the store after the gap
  EXPECT_EQ(Pr.SecondPc, Pr.CheckPc);
  EXPECT_EQ(Pr.RemotePc, 4u); // the replica's store
  EXPECT_NE(Pr.LocalTid, Pr.RemoteTid);
  EXPECT_TRUE(Pr.RemoteIsWrite);
}

TEST(Predict, FixedTwinYieldsNothing) {
  Program P = asmProg(AtomicityGapFixed);
  EXPECT_TRUE(predictProgram(P).empty());
}

TEST(Predict, ReplicasAreDeduplicated) {
  // Two replicas or eight: the symmetric pattern is reported once per
  // code-equality class, not once per ordered thread pair.
  std::string Eight = AtomicityGap;
  size_t Pos = Eight.find("x2");
  Eight.replace(Pos, 2, "x8");
  EXPECT_EQ(predictProgram(asmProg(Eight)).size(),
            predictProgram(asmProg(AtomicityGap)).size());
}

TEST(Predict, SingleThreadHasNoPredictions) {
  Program P = asmProg(R"(
.global x
.thread t
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  halt
)");
  EXPECT_TRUE(predictProgram(P).empty());
}

TEST(Predict, StaleReadWhenVariablesDiffer) {
  // The write publishes to y a value computed from x; a remote write to
  // x between read and publish is a stale-read, not a lost update.
  Program P = asmProg(R"(
.global x
.global y
.thread a
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@y]
  halt
.thread b
  li r1, 9
  st r1, [@x]
  halt
)");
  std::vector<Prediction> Ps = predictProgram(P);
  ASSERT_FALSE(Ps.empty());
  bool SawStale = false;
  for (const Prediction &Pr : Ps)
    SawStale |= Pr.Kind == PatternKind::StaleRead &&
                Pr.LocalTid == 0 && Pr.FirstPc == 0 && Pr.CheckPc == 2;
  EXPECT_TRUE(SawStale);
}

TEST(Predict, DirtyReadBetweenConnectedWrites) {
  // Two stores of one unit to the same variable; the remote read can
  // observe the intermediate value.
  Program P = asmProg(R"(
.global x
.thread a
  ld r1, [@x]
  addi r2, r1, 1
  st r2, [@x]
  addi r3, r1, 2
  st r3, [@x]
  halt
.thread b
  ld r1, [@x]
  halt
)");
  std::vector<Prediction> Ps = predictProgram(P);
  bool SawDirty = false;
  for (const Prediction &Pr : Ps)
    SawDirty |= Pr.Kind == PatternKind::DirtyRead && Pr.FirstPc == 2 &&
                Pr.CheckPc == 4 && !Pr.RemoteIsWrite;
  EXPECT_TRUE(SawDirty);
}

TEST(Predict, SortedBySourceLine) {
  std::vector<Prediction> Ps = predictProgram(asmProg(AtomicityGap));
  std::vector<Prediction> Shuffled(Ps.rbegin(), Ps.rend());
  sortPredictions(Shuffled);
  for (size_t I = 0; I < Ps.size(); ++I) {
    EXPECT_EQ(Shuffled[I].FirstLine, Ps[I].FirstLine);
    EXPECT_EQ(Shuffled[I].CheckLine, Ps[I].CheckLine);
  }
  for (size_t I = 1; I < Ps.size(); ++I)
    EXPECT_LE(Ps[I - 1].FirstLine, Ps[I].FirstLine);
}

//===----------------------------------------------------------------------===//
// Directed-schedule confirmation
//===----------------------------------------------------------------------===//

TEST(Confirm, LockGapConfirmsViaSlidingPreemption) {
  // The remote replica blocks on tbl_lock right after the preemption;
  // the engine must slide the local thread through its unlock (but not
  // through the write-back) to let the remote in.
  Program P = asmProg(AtomicityGap);
  PredictReport Rep = predictAndConfirm(P);
  ASSERT_EQ(Rep.Predictions.size(), 1u);
  ASSERT_EQ(Rep.numConfirmed(), 1u);
  EXPECT_EQ(Rep.Results[0].How,
            ConfirmResult::Evidence::DetectorViolation);
  EXPECT_EQ(Rep.Results[0].Occurrence, 1u);
  EXPECT_FALSE(Rep.Results[0].Detail.empty());
}

TEST(Confirm, FixedTwinStaysSilent) {
  PredictReport Rep = predictAndConfirm(asmProg(AtomicityGapFixed));
  EXPECT_TRUE(Rep.Predictions.empty());
  EXPECT_EQ(Rep.numConfirmed(), 0u);
  EXPECT_EQ(Rep.DirectedRuns, 0u);
}

TEST(Confirm, DynamicallyDeadRemoteStaysUnconfirmed) {
  // Thread b's store is statically reachable but dynamically dead (the
  // flag is never set): the prediction survives the static passes, and
  // the confirmation engine — unable to drive b to the store — keeps it
  // out of the confirmed set. This is the zero-unconfirmed-noise
  // contract's filtering half.
  Program P = asmProg(R"(
.global x
.global flag
.thread a
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  halt
.thread b
  ld r3, [@flag]
  beqz r3, done
  li r1, 5
  st r1, [@x]
done:
  halt
)");
  PredictReport Rep = predictAndConfirm(P);
  ASSERT_FALSE(Rep.Predictions.empty());
  EXPECT_EQ(Rep.numConfirmed(), 0u);
  EXPECT_GT(Rep.DirectedRuns, 0u);
}

TEST(Confirm, JsonReportValidatesAndCountsMatch) {
  Program P = asmProg(AtomicityGap);
  PredictReport Rep = predictAndConfirm(P);
  std::string Json = predictReportToJson(P, Rep);
  std::string Err;
  EXPECT_TRUE(support::jsonValidate(Json, &Err)) << Err;
  EXPECT_NE(Json.find("\"num_confirmed\":1"), std::string::npos);
  EXPECT_NE(Json.find("\"kind\":\"lost-update\""), std::string::npos);
  EXPECT_NE(Json.find("\"evidence\":\"detector-violation\""),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// End-to-end on the paper's workload analogs
//===----------------------------------------------------------------------===//

TEST(Confirm, ApacheLogAnalogConfirmsOnBugLines) {
  // Figure 2: the unlocked index read-modify-write of the log module.
  workloads::WorkloadParams WP;
  WP.Threads = 2;
  WP.Iterations = 2;
  WP.WorkPadding = 2;
  workloads::Workload W = workloads::apacheLog(WP);
  ASSERT_TRUE(W.HasKnownBug);

  PredictReport Rep = predictAndConfirm(W.Program);
  ASSERT_FALSE(Rep.Predictions.empty());
  ASSERT_GT(Rep.numConfirmed(), 0u);

  // The workload also carries a deliberately benign data race: the
  // monitor thread's unlocked scoreboard read of nreq. That interleaving
  // is dynamically real (the detector is right to flag it), so the
  // ground-truth check below exempts the monitor — every *other*
  // confirmed prediction must involve a ";BUG"-tagged pc.
  const isa::ThreadId MonitorTid =
      static_cast<isa::ThreadId>(W.Program.Threads.size() - 1);
  bool SawBugLine = false;
  for (size_t I = 0; I < Rep.Predictions.size(); ++I) {
    if (!Rep.Results[I].confirmed())
      continue;
    const Prediction &Pr = Rep.Predictions[I];
    bool OnBugLine =
        W.BugPcs[Pr.LocalTid].count(Pr.FirstPc) ||
        W.BugPcs[Pr.LocalTid].count(Pr.CheckPc) ||
        W.BugPcs[Pr.RemoteTid].count(Pr.RemotePc);
    SawBugLine |= OnBugLine;
    EXPECT_TRUE(OnBugLine || Pr.LocalTid == MonitorTid)
        << formatPrediction(W.Program, Pr) << " :: "
        << Rep.Results[I].Detail;
  }
  EXPECT_TRUE(SawBugLine);
}

TEST(Confirm, ApacheLogFixedAnalogConfirmsOnlyTheBenignMonitor) {
  // With the missing critical section added, nothing in the log module
  // confirms; the only surviving reports come from the known-benign
  // monitor scoreboard race (an interleaving the fix does not order).
  workloads::WorkloadParams WP;
  WP.Threads = 2;
  WP.Iterations = 2;
  WP.WorkPadding = 2;
  WP.WithLock = true; // the patched module
  workloads::Workload W = workloads::apacheLog(WP);
  EXPECT_FALSE(W.HasKnownBug);
  const isa::ThreadId MonitorTid =
      static_cast<isa::ThreadId>(W.Program.Threads.size() - 1);
  PredictReport Rep = predictAndConfirm(W.Program);
  for (size_t I = 0; I < Rep.Predictions.size(); ++I)
    if (Rep.Results[I].confirmed())
      EXPECT_EQ(Rep.Predictions[I].LocalTid, MonitorTid)
          << formatPrediction(W.Program, Rep.Predictions[I]);
}

TEST(Confirm, MysqlPreparedAnalogConfirmsSomething) {
  // Figures 1 & 3: the table-lock gap plus the mistakenly shared
  // query_id/used_fields state.
  workloads::WorkloadParams WP;
  WP.Threads = 2;
  WP.Iterations = 2;
  WP.WorkPadding = 2;
  workloads::Workload W = workloads::mysqlPrepared(WP);
  ASSERT_TRUE(W.HasKnownBug);
  PredictReport Rep = predictAndConfirm(W.Program);
  ASSERT_FALSE(Rep.Predictions.empty());
  EXPECT_GT(Rep.numConfirmed(), 0u);
}
