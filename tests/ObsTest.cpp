//===- tests/ObsTest.cpp - Observability subsystem tests ------------------===//
//
// Pins the obs contract the rest of the repo depends on: counters are
// deterministic (bit-identical totals at any --jobs value / completion
// order), timers are timing-only and excluded from every comparison,
// and both exporters emit strictly valid JSON.
//
//===----------------------------------------------------------------------===//

#include "obs/ChromeTrace.h"
#include "obs/Obs.h"

#include "harness/Harness.h"
#include "harness/Runner.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>

using namespace svd;
using namespace svd::obs;
using workloads::Workload;
using workloads::WorkloadParams;

//===----------------------------------------------------------------------===//
// Registry / instruments
//===----------------------------------------------------------------------===//

TEST(Obs, CounterAccumulates) {
  Registry R;
  Counter &C = R.counter("x");
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&R.counter("x"), &C);
  EXPECT_NE(&R.counter("y"), &C);
}

TEST(Obs, CountersListSortedByName) {
  Registry R;
  R.counter("b").add(2);
  R.counter("a").add(1);
  R.counter("c").add(3);
  auto Cs = R.counters();
  ASSERT_EQ(Cs.size(), 3u);
  EXPECT_EQ(Cs[0].first, "a");
  EXPECT_EQ(Cs[1].first, "b");
  EXPECT_EQ(Cs[2].first, "c");
  EXPECT_EQ(Cs[1].second, 2u);
}

TEST(Obs, TimerStatTracksMoments) {
  Registry R;
  TimerStat &T = R.timer("t");
  EXPECT_EQ(T.snapshot().Count, 0u);
  T.recordNs(10);
  T.recordNs(30);
  T.recordNs(20);
  TimerStat::Snapshot S = T.snapshot();
  EXPECT_EQ(S.Count, 3u);
  EXPECT_EQ(S.TotalNs, 60u);
  EXPECT_EQ(S.MinNs, 10u);
  EXPECT_EQ(S.MaxNs, 30u);
}

TEST(Obs, ScopedTimerRecordsOneSpan) {
  Registry R;
  TimerStat &T = R.timer("span");
  { ScopedTimer S(&T); }
  EXPECT_EQ(T.snapshot().Count, 1u);
  { ScopedTimer S(nullptr); } // null target: no-op, no crash
  EXPECT_EQ(T.snapshot().Count, 1u);
}

TEST(Obs, ConcurrentAddsSumExactly) {
  Registry R;
  const int Threads = 8, PerThread = 10000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&R] {
      // Mix cached-reference and by-name adds, plus timer traffic, so
      // insertion races with lookup.
      Counter &C = R.counter("hot");
      for (int I = 0; I < PerThread; ++I) {
        C.add();
        R.counter("cold").add(2);
        R.timer("t").recordNs(1);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(R.counter("hot").value(), uint64_t(Threads) * PerThread);
  EXPECT_EQ(R.counter("cold").value(), uint64_t(Threads) * PerThread * 2);
  EXPECT_EQ(R.timer("t").snapshot().Count, uint64_t(Threads) * PerThread);
}

//===----------------------------------------------------------------------===//
// metricsJson
//===----------------------------------------------------------------------===//

TEST(Obs, MetricsJsonIsValidAndOrdered) {
  Registry R;
  R.counter("vm.instructions").add(123);
  R.counter("detect.svd.reports").add(4);
  R.timer("runner.total").recordNs(5000);
  std::string Doc = metricsJson(R);
  std::string Err;
  EXPECT_TRUE(support::jsonValidate(Doc, &Err)) << Err << "\n" << Doc;
  EXPECT_NE(Doc.find("\"schema\": \"svd-metrics-v1\""), std::string::npos);
  // Counters sorted, and the "timings" key strictly after every counter
  // — the deterministic-prefix cut ObsCheck.cmake relies on.
  size_t A = Doc.find("detect.svd.reports");
  size_t B = Doc.find("vm.instructions");
  size_t T = Doc.find("\"timings\"");
  ASSERT_NE(A, std::string::npos);
  ASSERT_NE(B, std::string::npos);
  ASSERT_NE(T, std::string::npos);
  EXPECT_LT(A, B);
  EXPECT_LT(B, T);
  EXPECT_NE(Doc.find("\"total_ns\""), std::string::npos);
}

TEST(Obs, MetricsJsonEmptyRegistryStillValidates) {
  Registry R;
  std::string Doc = metricsJson(R);
  std::string Err;
  EXPECT_TRUE(support::jsonValidate(Doc, &Err)) << Err << "\n" << Doc;
}

//===----------------------------------------------------------------------===//
// Chrome trace export
//===----------------------------------------------------------------------===//

TEST(Obs, ChromeTraceJsonValidatesAndCarriesSpans) {
  TraceCollector T;
  TraceSpan S;
  S.Name = "w/svd/s1";
  S.Cat = "sample";
  S.Track = 1;
  S.StartNs = 1500;
  S.DurNs = 2500;
  S.Args = {{"seed", "1"}, {"workload", "\"w\""}};
  T.add(S);
  T.nameTrack(1, "worker 1");
  std::string Doc = T.chromeTraceJson();
  std::string Err;
  EXPECT_TRUE(support::jsonValidate(Doc, &Err)) << Err << "\n" << Doc;
  EXPECT_NE(Doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Doc.find("w/svd/s1"), std::string::npos);
  // ts/dur are microseconds with the ns remainder as fraction.
  EXPECT_NE(Doc.find("\"ts\":1.500"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"dur\":2.500"), std::string::npos) << Doc;
}

TEST(Obs, ChromeTraceSortsSlicesByStart) {
  TraceCollector T;
  TraceSpan Late, Early;
  Late.Name = "late";
  Late.StartNs = 9000;
  Early.Name = "early";
  Early.StartNs = 1000;
  T.add(Late);
  T.add(Early);
  std::string Doc = T.chromeTraceJson();
  EXPECT_LT(Doc.find("early"), Doc.find("late"));
}

//===----------------------------------------------------------------------===//
// End-to-end: runner fills the registry jobs-invariantly
//===----------------------------------------------------------------------===//

namespace {

/// Runs the same spec mix at the given jobs/shuffle and returns the
/// counter half of the registry.
std::map<std::string, uint64_t>
runCounters(const std::vector<harness::SampleSpec> &Specs, unsigned Jobs,
            uint64_t Shuffle, obs::TraceCollector *Trace = nullptr) {
  Registry R;
  harness::RunnerConfig RC;
  RC.Jobs = Jobs;
  RC.PickupShuffleSeed = Shuffle;
  RC.Obs = &R;
  RC.Trace = Trace;
  harness::ParallelRunner(RC).run(Specs);
  std::map<std::string, uint64_t> Out;
  for (const auto &KV : R.counters())
    Out.insert(KV);
  return Out;
}

std::vector<harness::SampleSpec> specMix(const Workload &Apache,
                                         const Workload &Pgsql) {
  std::vector<harness::SampleSpec> Specs;
  for (const Workload *W : {&Apache, &Pgsql})
    for (uint64_t Seed = 1; Seed <= 4; ++Seed)
      for (const char *Det : {"svd", "frd"}) {
        harness::SampleSpec S;
        S.Workload = W;
        S.Detector = Det;
        S.Config.Seed = Seed;
        Specs.push_back(S);
      }
  return Specs;
}

} // namespace

TEST(Obs, RunnerCountersAreJobsInvariant) {
  WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 15;
  Workload Apache = workloads::apacheLog(P);
  Workload Pgsql = workloads::pgsqlOltp(P);
  std::vector<harness::SampleSpec> Specs = specMix(Apache, Pgsql);

  std::map<std::string, uint64_t> Serial = runCounters(Specs, 1, 0);
  // The sweep must actually have counted things.
  EXPECT_GT(Serial.at("harness.samples"), 0u);
  EXPECT_GT(Serial.at("vm.instructions"), 0u);
  EXPECT_GT(Serial.at("vm.loads"), 0u);
  EXPECT_GT(Serial.at("vm.lock_acquires"), 0u);
  EXPECT_GT(Serial.at("detect.svd.events"), 0u);
  EXPECT_GT(Serial.at("detect.frd.events"), 0u);

  // Deterministic counters: identical map (names AND values) for every
  // jobs value and completion order. Timers are intentionally NOT
  // compared — they are wall-clock.
  for (uint64_t Shuffle : {0ull, 7ull, 0xBEEFull}) {
    std::map<std::string, uint64_t> Par = runCounters(Specs, 4, Shuffle);
    EXPECT_EQ(Serial, Par) << "jobs 4, shuffle " << Shuffle;
  }
}

TEST(Obs, RunnerEmitsOneSlicePerSamplePlusAggregate) {
  WorkloadParams P;
  P.Threads = 2;
  P.Iterations = 5;
  Workload Pgsql = workloads::pgsqlOltp(P);
  std::vector<harness::SampleSpec> Specs;
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    harness::SampleSpec S;
    S.Workload = &Pgsql;
    S.Detector = "none";
    S.Config.Seed = Seed;
    Specs.push_back(S);
  }
  TraceCollector T;
  runCounters(Specs, 2, 0, &T);
  std::vector<TraceSpan> Spans = T.spans();
  ASSERT_EQ(Spans.size(), Specs.size() + 1); // + aggregate on track 0
  size_t Samples = 0, Aggregates = 0;
  for (const TraceSpan &S : Spans) {
    if (S.Cat == "sample") {
      ++Samples;
      EXPECT_GE(S.Track, 1u); // workers own tracks 1..N
    } else {
      ++Aggregates;
      EXPECT_EQ(S.Track, 0u);
      EXPECT_EQ(S.Cat, "runner");
    }
  }
  EXPECT_EQ(Samples, Specs.size());
  EXPECT_EQ(Aggregates, 1u);
  std::string Err;
  EXPECT_TRUE(support::jsonValidate(T.chromeTraceJson(), &Err)) << Err;
}

TEST(Obs, SampleCountersMatchSampleMetrics) {
  WorkloadParams P;
  P.Threads = 2;
  P.Iterations = 10;
  Workload Pgsql = workloads::pgsqlOltp(P);
  Registry R;
  harness::SampleConfig C;
  C.Seed = 3;
  C.Obs = &R;
  harness::SampleMetrics M = harness::runSample(Pgsql, "svd", C);
  // One sample: the registry totals are exactly that sample's counts.
  EXPECT_EQ(R.counter("harness.samples").value(), 1u);
  EXPECT_EQ(R.counter("vm.instructions").value(), M.Steps);
  EXPECT_EQ(R.counter("detect.svd.reports").value(), M.DynamicReports);
  EXPECT_EQ(R.counter("detect.svd.cus_formed").value(), M.CusFormed);
  EXPECT_EQ(R.counter("detect.svd.log_entries").value(), M.LogEntries);
  // Timing spans recorded but deliberately outside the counter set.
  EXPECT_EQ(R.timer("harness.sample.detector_run").snapshot().Count, 1u);
}
