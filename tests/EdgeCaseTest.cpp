//===- tests/EdgeCaseTest.cpp - Edge cases across modules ------------------===//

#include "TestUtil.h"
#include "harness/Harness.h"
#include "support/StringUtils.h"
#include "svd/OnlineSvd.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::detect;
using isa::assembleOrDie;
using testutil::sched;
using vm::Machine;
using vm::MachineConfig;

namespace {

struct SvdRun {
  std::vector<Violation> Violations;
  std::vector<CuLogEntry> Log;
  uint64_t CusEnded = 0;
};

SvdRun runSvd(const isa::Program &P, const std::vector<isa::ThreadId> &S,
              OnlineSvdConfig Cfg = OnlineSvdConfig()) {
  Machine M(P);
  OnlineSvd Svd(P, Cfg);
  M.addObserver(&Svd);
  if (!S.empty()) {
    M.setReplaySchedule(S);
    M.run();
    M.clearReplaySchedule();
  }
  M.run();
  return {Svd.violations(), Svd.cuLog(), Svd.numCusEnded()};
}

} // namespace

//===----------------------------------------------------------------------===//
// Online SVD edge cases.
//===----------------------------------------------------------------------===//

TEST(OnlineSvdEdge, KeepCuLogFalseSuppressesLog) {
  isa::Program P = assembleOrDie(R"(
.global qid
.thread victim
  li r1, 7
  st r1, [@qid]
  nop
  ld r2, [@qid]
  halt
.thread intruder
  li r3, 99
  st r3, [@qid]
  halt
)");
  OnlineSvdConfig Cfg;
  Cfg.KeepCuLog = false;
  SvdRun R = runSvd(P, sched({{0, 2}, {1, 3}, {0, 3}}), Cfg);
  EXPECT_TRUE(R.Log.empty());
  EXPECT_GE(R.CusEnded, 1u); // the CU still ends; only logging is off
}

TEST(OnlineSvdEdge, RepeatedLocalStoresKeepStoredSharedState) {
  // Store, remote read (-> StoredShared), store again, then the local
  // re-read must still cut the CU exactly once and not crash.
  isa::Program P = assembleOrDie(R"(
.global g
.thread a
  li r1, 5
  st r1, [@g]        ; Stored
  nop                ; (remote read arrives here)
  st r1, [@g]        ; StoredShared stays
  ld r2, [@g]        ; cut
  st r2, [@g]        ; fresh CU
  halt
.thread b
  ld r3, [@g]        ; the remote read
  halt
)");
  SvdRun R = runSvd(P, sched({{0, 3}, {1, 2}, {0, 4}}));
  EXPECT_EQ(R.CusEnded, 1u);
  EXPECT_TRUE(R.Violations.empty()); // remote read vs local writes only
}

TEST(OnlineSvdEdge, StoreWithAliasedDataAndAddressRegister) {
  // st r1, [r1] — the same register supplies data and address; both
  // dependence paths must resolve without double-reporting.
  isa::Program P = assembleOrDie(R"(
.global base 16
.thread a
  ld r1, [@base]     ; r1 = 0 -> address 0 = base
  st r1, [r1]        ; aliased store
  halt
.thread b
  li r2, 3
  st r2, [@base]
  halt
)");
  // b's write lands between a's load and store.
  SvdRun R = runSvd(P, sched({{0, 1}, {1, 3}, {0, 2}}));
  EXPECT_EQ(R.Violations.size(), 1u);
}

TEST(OnlineSvdEdge, DeepNestedBranchesRespectStackCap) {
  // 300 nested ifs exceed the default control-stack cap; the detector
  // must drop old frames rather than grow unboundedly or crash.
  std::string Src = ".global g\n.thread t\n  li r1, 1\n";
  for (int I = 0; I < 300; ++I)
    Src += support::formatString("  bnez r1, l%d\nl%d:\n", I, I);
  Src += "  halt\n";
  isa::Program P = assembleOrDie(Src);
  OnlineSvdConfig Cfg;
  Cfg.MaxControlStackDepth = 16;
  SvdRun R = runSvd(P, {}, Cfg);
  EXPECT_TRUE(R.Violations.empty());
}

TEST(OnlineSvdEdge, BlockShiftReportsBlockBaseAddress) {
  isa::Program P = assembleOrDie(R"(
.global arr 4
.thread a
  ld r1, [@arr+3]
  addi r1, r1, 1
  st r1, [@arr+3]
  halt
.thread b
  li r2, 9
  st r2, [@arr+2]
  halt
)");
  OnlineSvdConfig Cfg;
  Cfg.BlockShift = 2; // 4-word blocks: arr+2 and arr+3 share block 0
  SvdRun R = runSvd(P, sched({{0, 1}, {1, 3}, {0, 3}}), Cfg);
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].Address % 4, 0u)
      << "address must be the block base";
}

TEST(OnlineSvdEdge, TwoIndependentConflictsReportTwice) {
  isa::Program P = assembleOrDie(R"(
.global x
.global y
.thread a
  ld r1, [@x]
  ld r2, [@y]
  add r3, r1, r2
  st r3, [@x]        ; checks both x and y inputs
  halt
.thread b
  li r4, 1
  st r4, [@x]
  st r4, [@y]
  halt
)");
  SvdRun R = runSvd(P, sched({{0, 2}, {1, 4}, {0, 3}}));
  // One store checks a CU whose inputs {x, y} both carry conflicts.
  EXPECT_EQ(R.Violations.size(), 2u);
}

TEST(OnlineSvdEdge, HaltedThreadStateDoesNotLeakIntoReports) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread a
  ld r1, [@g]
  halt
.thread b
  li r2, 1
  st r2, [@g]
  halt
)");
  // a halts before b writes: a never stores, so no report.
  SvdRun R = runSvd(P, sched({{0, 2}, {1, 3}}));
  EXPECT_TRUE(R.Violations.empty());
}

//===----------------------------------------------------------------------===//
// Machine edge cases.
//===----------------------------------------------------------------------===//

TEST(MachineEdge, CheckpointWhileBlockedRestoresBlockedState) {
  isa::Program P = assembleOrDie(R"(
.lock m
.global g
.thread holder
  lock @m
  yield
  yield
  li r1, 1
  st r1, [@g]
  unlock @m
  halt
.thread waiter
  lock @m
  ld r2, [@g]
  unlock @m
  halt
)");
  Machine M(P);
  // holder acquires, waiter attempts and blocks.
  M.setReplaySchedule({0, 1});
  M.run();
  M.clearReplaySchedule();
  EXPECT_EQ(M.threadState(1), vm::ThreadState::Blocked);
  vm::Checkpoint C = M.checkpoint();
  EXPECT_EQ(M.run(), vm::StopReason::AllHalted);
  isa::Word Final = M.readMem(P.addressOf("g"));
  M.restore(C);
  EXPECT_EQ(M.threadState(1), vm::ThreadState::Blocked);
  EXPECT_EQ(M.run(), vm::StopReason::AllHalted);
  EXPECT_EQ(M.readMem(P.addressOf("g")), Final);
}

TEST(MachineEdge, ThreeWayLockContentionAllEventuallyAcquire) {
  isa::Program P = assembleOrDie(R"(
.global count
.lock m
.thread t x3
  lock @m
  ld r1, [@count]
  addi r1, r1, 1
  st r1, [@count]
  unlock @m
  halt
)");
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    MachineConfig MC;
    MC.SchedSeed = Seed;
    Machine M(P, MC);
    ASSERT_EQ(M.run(), vm::StopReason::AllHalted) << "seed " << Seed;
    EXPECT_EQ(M.readMem(P.addressOf("count")), 3) << "seed " << Seed;
  }
}

TEST(MachineEdge, ReplayOfContendedRunReproducesBlockedAttempts) {
  isa::Program P = assembleOrDie(R"(
.global count
.lock m
.thread t x3
  li r5, 8
loop:
  lock @m
  ld r1, [@count]
  addi r1, r1, 1
  st r1, [@count]
  unlock @m
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  MachineConfig MC;
  MC.SchedSeed = 9;
  MC.MinTimeslice = 1;
  MC.MaxTimeslice = 2; // heavy contention: blocked attempts happen
  Machine A(P, MC);
  A.run();

  MachineConfig MC2;
  MC2.SchedSeed = 1234;
  Machine B(P, MC2);
  B.setReplaySchedule(A.schedule());
  EXPECT_EQ(B.run(), vm::StopReason::AllHalted);
  EXPECT_EQ(B.steps(), A.steps());
  EXPECT_EQ(B.readMem(P.addressOf("count")),
            A.readMem(P.addressOf("count")));
}

//===----------------------------------------------------------------------===//
// Harness edge cases.
//===----------------------------------------------------------------------===//

TEST(HarnessEdge, LocksetKindRunsThroughHarness) {
  workloads::WorkloadParams P;
  P.Threads = 2;
  P.Iterations = 10;
  workloads::Workload W = workloads::apacheLog(P);
  harness::SampleConfig C;
  C.Seed = 2;
  harness::SampleMetrics M = harness::runSample(W, "lockset", C);
  EXPECT_GT(M.Steps, 0u);
  EXPECT_GT(M.DynamicReports, 0u) << "the unlocked buffer must be flagged";
}

TEST(HarnessEdge, SvdConfigKnobsPropagateThroughHarness) {
  workloads::WorkloadParams P;
  P.Threads = 2;
  P.Iterations = 10;
  workloads::Workload W = workloads::apacheLog(P);
  harness::SampleConfig C;
  C.Seed = 2;
  detect::OnlineSvdConfig NoLog;
  NoLog.KeepCuLog = false;
  C.Detector = std::make_shared<detect::OnlineSvdDetectorConfig>(NoLog);
  harness::SampleMetrics M = harness::runSample(W, "svd", C);
  EXPECT_EQ(M.LogEntries, 0u);
  EXPECT_EQ(M.StaticLogEntries, 0u);
}

//===----------------------------------------------------------------------===//
// Assembler edge cases.
//===----------------------------------------------------------------------===//

TEST(AssemblerEdge, RejectsZeroReplicaCount) {
  isa::Program P;
  std::vector<isa::AsmError> Errors;
  EXPECT_FALSE(
      isa::assembleProgram(".thread t x0\n  halt\n", P, Errors));
}

TEST(AssemblerEdge, RejectsNegativeAbsoluteAddress) {
  isa::Program P;
  std::vector<isa::AsmError> Errors;
  EXPECT_FALSE(isa::assembleProgram(
      ".global g\n.thread t\n  ld r1, [@g+-5]\n  halt\n", P, Errors));
}

TEST(AssemblerEdge, NegativeOffsetWithinRangeIsFine) {
  isa::Program P;
  std::vector<isa::AsmError> Errors;
  ASSERT_TRUE(isa::assembleProgram(
      ".global g 4\n.thread t\n  ld r1, [@g+3]\n  ld r2, [@g+3+-1]\n"
      "  halt\n",
      P, Errors));
  EXPECT_EQ(P.Threads[0].Code[1].Imm, 2);
}
