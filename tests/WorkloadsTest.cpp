//===- tests/WorkloadsTest.cpp - Workload analog tests ---------------------===//

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::workloads;
using vm::Machine;
using vm::MachineConfig;
using vm::StopReason;

namespace {

StopReason runSeed(const Workload &W, uint64_t Seed, Machine *&Out,
                   std::unique_ptr<Machine> &Holder) {
  MachineConfig Cfg;
  Cfg.SchedSeed = Seed;
  Holder = std::make_unique<Machine>(W.Program, Cfg);
  Out = Holder.get();
  return Out->run();
}

} // namespace

TEST(Workloads, ApacheAssemblesAndRuns) {
  WorkloadParams P;
  P.Threads = 2;
  P.Iterations = 10;
  Workload W = apacheLog(P);
  EXPECT_TRUE(W.HasKnownBug);
  // P.Threads workers plus the scoreboard-monitor thread.
  EXPECT_EQ(W.Program.numThreads(), 3u);
  bool AnyBugPc = false;
  for (const auto &S : W.BugPcs)
    AnyBugPc |= !S.empty();
  EXPECT_TRUE(AnyBugPc);
  Machine *M = nullptr;
  std::unique_ptr<Machine> H;
  EXPECT_EQ(runSeed(W, 1, M, H), StopReason::AllHalted);
}

TEST(Workloads, ApacheBugManifestsForSomeSeed) {
  WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 20;
  Workload W = apacheLog(P);
  bool Manifested = false;
  for (uint64_t Seed = 1; Seed <= 10 && !Manifested; ++Seed) {
    Machine *M = nullptr;
    std::unique_ptr<Machine> H;
    runSeed(W, Seed, M, H);
    Manifested = W.Manifested(*M);
  }
  EXPECT_TRUE(Manifested) << "the log corruption should hit some seed";
}

TEST(Workloads, ApacheLockedVariantNeverCorrupts) {
  WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 20;
  P.WithLock = true;
  Workload W = apacheLog(P);
  EXPECT_FALSE(W.HasKnownBug);
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Machine *M = nullptr;
    std::unique_ptr<Machine> H;
    ASSERT_EQ(runSeed(W, Seed, M, H), StopReason::AllHalted);
    EXPECT_FALSE(W.Manifested(*M)) << "seed " << Seed;
  }
}

TEST(Workloads, MysqlPreparedCrashesForSomeSeed) {
  WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 20;
  Workload W = mysqlPrepared(P);
  EXPECT_TRUE(W.HasKnownBug);
  bool Crashed = false;
  for (uint64_t Seed = 1; Seed <= 10 && !Crashed; ++Seed) {
    Machine *M = nullptr;
    std::unique_ptr<Machine> H;
    runSeed(W, Seed, M, H);
    Crashed = W.Manifested(*M);
    if (Crashed) {
      EXPECT_FALSE(M->errors().empty());
    }
  }
  EXPECT_TRUE(Crashed) << "the prepared-query crash should hit some seed";
}

TEST(Workloads, MysqlPreparedSingleThreadNeverCrashes) {
  WorkloadParams P;
  P.Threads = 1;
  P.Iterations = 30;
  Workload W = mysqlPrepared(P);
  Machine *M = nullptr;
  std::unique_ptr<Machine> H;
  EXPECT_EQ(runSeed(W, 3, M, H), StopReason::AllHalted);
  EXPECT_FALSE(W.Manifested(*M));
}

TEST(Workloads, PgsqlRunsCleanAcrossSeeds) {
  WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 20;
  Workload W = pgsqlOltp(P);
  EXPECT_FALSE(W.HasKnownBug);
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Machine *M = nullptr;
    std::unique_ptr<Machine> H;
    ASSERT_EQ(runSeed(W, Seed, M, H), StopReason::AllHalted);
    EXPECT_FALSE(W.Manifested(*M))
        << "conservation violated at seed " << Seed;
  }
}

TEST(Workloads, TableLockAndQueueRun) {
  WorkloadParams P;
  P.Threads = 3;
  P.Iterations = 15;
  for (Workload W : {mysqlTableLock(P), sharedQueue(P)}) {
    EXPECT_FALSE(W.HasKnownBug) << W.Name;
    Machine *M = nullptr;
    std::unique_ptr<Machine> H;
    EXPECT_EQ(runSeed(W, 2, M, H), StopReason::AllHalted) << W.Name;
    EXPECT_TRUE(M->errors().empty()) << W.Name;
  }
}

TEST(Workloads, RandomGeneratorIsDeterministic) {
  RandomParams P;
  P.Seed = 42;
  P.OmitLockProbability = 0.3;
  Workload A = randomWorkload(P);
  Workload B = randomWorkload(P);
  EXPECT_EQ(A.Program.numInstructions(), B.Program.numInstructions());
  EXPECT_EQ(A.BugPcs, B.BugPcs);
}

TEST(Workloads, RandomCorrectProgramNeverManifests) {
  RandomParams P;
  P.Seed = 7;
  P.OmitLockProbability = 0.0;
  Workload W = randomWorkload(P);
  EXPECT_FALSE(W.HasKnownBug);
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    Machine *M = nullptr;
    std::unique_ptr<Machine> H;
    ASSERT_EQ(runSeed(W, Seed, M, H), StopReason::AllHalted);
    EXPECT_FALSE(W.Manifested(*M)) << "seed " << Seed;
  }
}

TEST(Workloads, RandomBuggyProgramEventuallyManifests) {
  RandomParams P;
  P.Seed = 11;
  P.Threads = 4;
  P.Iterations = 40;
  P.OmitLockProbability = 0.5;
  Workload W = randomWorkload(P);
  EXPECT_TRUE(W.HasKnownBug);
  bool Manifested = false;
  for (uint64_t Seed = 1; Seed <= 10 && !Manifested; ++Seed) {
    Machine *M = nullptr;
    std::unique_ptr<Machine> H;
    runSeed(W, Seed, M, H);
    Manifested = W.Manifested(*M);
  }
  EXPECT_TRUE(Manifested);
}

TEST(Workloads, TrueReportClassification) {
  WorkloadParams P;
  P.Threads = 2;
  P.Iterations = 5;
  Workload W = apacheLog(P);
  // Find one tagged pc and one untagged pc of thread 0.
  ASSERT_FALSE(W.BugPcs[0].empty());
  uint32_t BugPc = *W.BugPcs[0].begin();
  uint32_t CleanPc = 0;
  while (W.BugPcs[0].count(CleanPc))
    ++CleanPc;

  detect::Violation V;
  V.Tid = 0;
  V.Pc = BugPc;
  V.OtherTid = 1;
  V.OtherPc = CleanPc;
  EXPECT_TRUE(W.isTrueReport(V));
  V.Pc = CleanPc;
  V.OtherPc = CleanPc;
  EXPECT_FALSE(W.isTrueReport(V));
}

TEST(Workloads, Table1CoversThePaperPrograms) {
  WorkloadParams P;
  P.Threads = 2;
  P.Iterations = 4;
  std::vector<Workload> All = table1Workloads(P);
  ASSERT_EQ(All.size(), 3u);
  EXPECT_EQ(All[0].Name, "Apache");
  EXPECT_EQ(All[1].Name, "MySQL");
  EXPECT_EQ(All[2].Name, "PgSQL");
  EXPECT_TRUE(All[0].HasKnownBug);
  EXPECT_TRUE(All[1].HasKnownBug);
  EXPECT_FALSE(All[2].HasKnownBug);
}
