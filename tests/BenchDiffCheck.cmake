# Perf-baseline regression gate. Runs one perf suite fresh and diffs
# it against its committed BENCH_<suite>.json with svd-bench-diff:
# every deterministic field (event counts, pruned/filtered counts,
# proven CUs, shadow-page counts, instruction totals) must match the
# baseline byte-for-byte; the wall-clock insts_per_sec rate is
# advisory only. Invoke with:
#
#   cmake -DBENCH=<svd-bench> -DDIFF=<svd-bench-diff>
#         -DBASELINE=<BENCH_<suite>.json> -DOUTDIR=<scratch-dir>
#         [-DSUITE=<suite>]      # default table1
#         [-DTRANSLATE=ON]       # add --translate (baseline must carry
#                                # the translate_* rate fields)
#         -P BenchDiffCheck.cmake

if(NOT SUITE)
  set(SUITE table1)
endif()
set(XLFLAG "")
if(TRANSLATE)
  set(XLFLAG "--translate")
endif()

file(MAKE_DIRECTORY "${OUTDIR}")
set(CURRENT "${OUTDIR}/${SUITE}_perf.json")

execute_process(COMMAND "${BENCH}" --suite ${SUITE} --perf ${XLFLAG} --json
                OUTPUT_FILE "${CURRENT}"
                RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "svd-bench --suite ${SUITE} --perf --json exited ${RC}")
endif()

execute_process(COMMAND "${DIFF}" "${BASELINE}" "${CURRENT}"
                OUTPUT_VARIABLE OUT
                RESULT_VARIABLE RC)
message(STATUS "svd-bench-diff output:\n${OUT}")
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "deterministic perf fields drifted from ${BASELINE} "
                      "(svd-bench-diff exited ${RC})")
endif()
