# Perf-baseline regression gate. Runs the table1 perf suite fresh and
# diffs it against the committed BENCH_table1.json with svd-bench-diff:
# every deterministic field (event counts, pruned/filtered counts,
# proven CUs, pruned_pct, instruction totals) must match the baseline
# byte-for-byte; the wall-clock insts_per_sec rate is advisory only.
# Invoke with:
#
#   cmake -DBENCH=<svd-bench> -DDIFF=<svd-bench-diff>
#         -DBASELINE=<BENCH_table1.json> -DOUTDIR=<scratch-dir>
#         -P BenchDiffCheck.cmake

file(MAKE_DIRECTORY "${OUTDIR}")
set(CURRENT "${OUTDIR}/table1_perf.json")

execute_process(COMMAND "${BENCH}" --suite table1 --perf --json
                OUTPUT_FILE "${CURRENT}"
                RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "svd-bench --suite table1 --perf --json exited ${RC}")
endif()

execute_process(COMMAND "${DIFF}" "${BASELINE}" "${CURRENT}"
                OUTPUT_VARIABLE OUT
                RESULT_VARIABLE RC)
message(STATUS "svd-bench-diff output:\n${OUT}")
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "deterministic perf fields drifted from ${BASELINE} "
                      "(svd-bench-diff exited ${RC})")
endif()
