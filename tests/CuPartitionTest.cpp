//===- tests/CuPartitionTest.cpp - Unit tests for offline CU inference ----===//

#include "TestUtil.h"
#include "cu/CuPartition.h"
#include "pdg/Pdg.h"

#include <gtest/gtest.h>

#include <set>

using namespace svd;
using namespace svd::cu;
using isa::assembleOrDie;
using testutil::recordRun;
using testutil::recordWithPrefix;
using testutil::sched;
using trace::EventKind;
using trace::ProgramTrace;

namespace {

CuPartition partitionOf(const ProgramTrace &T) {
  pdg::DynamicPdg G = pdg::DynamicPdg::build(T);
  return CuPartition::compute(T, G);
}

/// Number of CUs owned by thread \p Tid.
size_t unitsOfThread(const CuPartition &CUs, isa::ThreadId Tid) {
  size_t N = 0;
  for (const ComputationalUnit &U : CUs.units())
    if (U.Tid == Tid)
      ++N;
  return N;
}

} // namespace

TEST(CuPartition, DependentChainFormsOneUnit) {
  isa::Program P = assembleOrDie(R"(
.thread t
  li r1, 1
  addi r2, r1, 1
  add r3, r2, r1
  halt
)");
  ProgramTrace T = recordRun(P);
  CuPartition CUs = partitionOf(T);
  ASSERT_EQ(CUs.units().size(), 1u);
  EXPECT_EQ(CUs.units()[0].Events.size(), 3u);
}

TEST(CuPartition, IndependentChainsFormSeparateUnits) {
  isa::Program P = assembleOrDie(R"(
.thread t
  li r1, 1
  addi r1, r1, 1
  li r2, 5
  addi r2, r2, 2
  halt
)");
  ProgramTrace T = recordRun(P);
  CuPartition CUs = partitionOf(T);
  EXPECT_EQ(CUs.units().size(), 2u);
  // The two chains are in different units.
  EXPECT_NE(CUs.unitOf(0), CUs.unitOf(2));
  EXPECT_EQ(CUs.unitOf(0), CUs.unitOf(1));
  EXPECT_EQ(CUs.unitOf(2), CUs.unitOf(3));
}

TEST(CuPartition, SharedRawCutsUnit) {
  // Thread a writes shared g then reads it back: the region hypothesis
  // forbids a true-shared arc inside a CU, so the read starts a new CU.
  isa::Program P = assembleOrDie(R"(
.global g
.thread a
  li r1, 3
  st r1, [@g]
  ld r2, [@g]
  addi r3, r2, 1
  halt
.thread b
  ld r9, [@g]
  halt
)");
  ProgramTrace T = recordWithPrefix(P, sched({{0, 5}, {1, 2}}));
  CuPartition CUs = partitionOf(T);
  EXPECT_EQ(unitsOfThread(CUs, 0), 2u);
  // li+st together; ld+addi together; and they differ.
  EXPECT_EQ(CUs.unitOf(0), CUs.unitOf(1));
  EXPECT_EQ(CUs.unitOf(2), CUs.unitOf(3));
  EXPECT_NE(CUs.unitOf(1), CUs.unitOf(2));
}

TEST(CuPartition, UnsharedRawDoesNotCut) {
  // Same shape but g is private: one CU.
  isa::Program P = assembleOrDie(R"(
.global g
.thread a
  li r1, 3
  st r1, [@g]
  ld r2, [@g]
  addi r3, r2, 1
  halt
)");
  ProgramTrace T = recordRun(P);
  CuPartition CUs = partitionOf(T);
  EXPECT_EQ(CUs.units().size(), 1u);
  EXPECT_EQ(CUs.units()[0].Events.size(), 4u);
}

TEST(CuPartition, SharedWritesRecorded) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread a
  li r1, 3
  st r1, [@g]
  halt
.thread b
  ld r9, [@g]
  halt
)");
  ProgramTrace T = recordWithPrefix(P, sched({{0, 3}, {1, 2}}));
  CuPartition CUs = partitionOf(T);
  bool Found = false;
  for (const ComputationalUnit &U : CUs.units())
    for (isa::Addr A : U.SharedWrites)
      if (A == P.addressOf("g"))
        Found = true;
  EXPECT_TRUE(Found);
}

TEST(CuPartition, ControlDependenceConnectsBody) {
  isa::Program P = assembleOrDie(R"(
.thread t
  li r1, 0
  bnez r1, skip
  li r2, 9
skip:
  halt
)");
  ProgramTrace T = recordRun(P);
  CuPartition CUs = partitionOf(T);
  // li r1 -> bnez (true dep), bnez -> li r2 (control dep): one CU.
  ASSERT_EQ(CUs.units().size(), 1u);
  EXPECT_EQ(CUs.units()[0].Events.size(), 3u);
}

TEST(CuPartition, SyncEventsBelongToNoUnit) {
  isa::Program P = assembleOrDie(R"(
.global g
.lock m
.thread t
  lock @m
  li r1, 1
  st r1, [@g]
  unlock @m
  halt
)");
  ProgramTrace T = recordRun(P);
  CuPartition CUs = partitionOf(T);
  for (uint32_t E = 0; E < T.size(); ++E) {
    bool IsStatement = T[E].Kind == EventKind::Load ||
                       T[E].Kind == EventKind::Store ||
                       T[E].Kind == EventKind::Alu ||
                       T[E].Kind == EventKind::Branch;
    if (IsStatement)
      EXPECT_NE(CUs.unitOf(E), CuPartition::NoUnit);
    else
      EXPECT_EQ(CUs.unitOf(E), CuPartition::NoUnit);
  }
}

TEST(CuPartition, BeginEndSeqBracketMembers) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread t x2
  ld r1, [@g]
  addi r1, r1, 1
  st r1, [@g]
  halt
)");
  ProgramTrace T = recordRun(P, 5);
  CuPartition CUs = partitionOf(T);
  for (const ComputationalUnit &U : CUs.units()) {
    ASSERT_FALSE(U.Events.empty());
    EXPECT_LE(U.BeginSeq, U.EndSeq);
    for (uint32_t E : U.Events) {
      EXPECT_GE(T[E].Seq, U.BeginSeq);
      EXPECT_LE(T[E].Seq, U.EndSeq);
      EXPECT_EQ(T[E].Tid, U.Tid);
      EXPECT_EQ(CUs.unitOf(E), U.Id);
    }
  }
}

TEST(CuPartition, LockedIterationsSplitAtSharedRaw) {
  // A locked increment loop re-reads the shared counter each iteration:
  // each read must start a fresh CU (the cut is at the CS boundary + 1).
  isa::Program P = assembleOrDie(R"(
.global counter
.lock m
.thread worker x2
  li r5, 3
loop:
  lock @m
  ld r1, [@counter]
  addi r1, r1, 1
  st r1, [@counter]
  unlock @m
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  ProgramTrace T = recordRun(P, 2);
  CuPartition CUs = partitionOf(T);
  // Each thread runs 3 iterations; at least 3 CUs per thread (each
  // iteration's ld starts a new one after the first).
  EXPECT_GE(unitsOfThread(CUs, 0), 3u);
  EXPECT_GE(unitsOfThread(CUs, 1), 3u);
  EXPECT_GT(CUs.meanUnitSize(), 1.0);
}

TEST(CuPartition, DescribeMentionsUnits) {
  isa::Program P = assembleOrDie(R"(
.thread t
  li r1, 1
  addi r1, r1, 1
  halt
)");
  ProgramTrace T = recordRun(P);
  CuPartition CUs = partitionOf(T);
  std::string D = CUs.describe(T);
  EXPECT_NE(D.find("CU 0"), std::string::npos);
  EXPECT_NE(D.find("addi"), std::string::npos);
}

TEST(CuPartition, MeanUnitSizeEmptyTraceIsZero) {
  isa::Program P = assembleOrDie(".thread t\n  halt\n");
  ProgramTrace T = recordRun(P);
  CuPartition CUs = partitionOf(T);
  EXPECT_EQ(CUs.meanUnitSize(), 0.0);
}
