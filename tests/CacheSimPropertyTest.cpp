//===- tests/CacheSimPropertyTest.cpp - MESI invariants under fuzz ---------===//
//
// Parameterized sweep over cache geometries: drive a random access
// stream and check the MESI protocol invariants after every access:
//
//  * single-writer: at most one cache holds a line in M (or E), and
//    then no other cache holds it at all;
//  * sharers are Shared: if two caches hold a line, all copies are S;
//  * statistics are internally consistent.
//
//===----------------------------------------------------------------------===//

#include "cache/CacheSim.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::cache;

namespace {

struct Geometry {
  uint32_t Cpus;
  uint32_t LineWords;
  uint32_t Sets;
  uint32_t Ways;
};

std::string geometryName(const testing::TestParamInfo<Geometry> &Info) {
  const Geometry &G = Info.param;
  return "c" + std::to_string(G.Cpus) + "_l" +
         std::to_string(G.LineWords) + "_s" + std::to_string(G.Sets) +
         "_w" + std::to_string(G.Ways);
}

class MesiProperty : public testing::TestWithParam<Geometry> {
protected:
  CacheConfig config() const {
    const Geometry &G = GetParam();
    CacheConfig C;
    C.NumCpus = G.Cpus;
    C.LineWords = G.LineWords;
    C.Sets = G.Sets;
    C.Ways = G.Ways;
    return C;
  }

  /// Checks the coherence invariants for every line ever touched.
  void checkInvariants(const CacheSim &C, isa::Addr MaxAddr) {
    const CacheConfig &Cfg = C.config();
    for (LineId L = 0; L <= C.lineOf(MaxAddr); ++L) {
      unsigned Valid = 0, Writers = 0, Shared = 0;
      for (uint32_t Cpu = 0; Cpu < Cfg.NumCpus; ++Cpu) {
        switch (C.stateOf(Cpu, L)) {
        case LineState::Invalid:
          break;
        case LineState::Shared:
          ++Valid;
          ++Shared;
          break;
        case LineState::Exclusive:
        case LineState::Modified:
          ++Valid;
          ++Writers;
          break;
        }
      }
      ASSERT_LE(Writers, 1u) << "line " << L << ": two owners";
      if (Writers == 1) {
        ASSERT_EQ(Valid, 1u)
            << "line " << L << ": owner coexists with other copies";
      }
      if (Valid > 1) {
        ASSERT_EQ(Shared, Valid)
            << "line " << L << ": mixed states among sharers";
      }
    }
  }
};

} // namespace

TEST_P(MesiProperty, InvariantsHoldUnderRandomTraffic) {
  CacheSim C(config());
  const isa::Addr MaxAddr = 255;
  support::Xoshiro256 Rng(GetParam().Cpus * 1000 + GetParam().Sets);
  for (int I = 0; I < 4000; ++I) {
    uint32_t Cpu = static_cast<uint32_t>(
        Rng.nextBelow(config().NumCpus));
    isa::Addr A = static_cast<isa::Addr>(Rng.nextBelow(MaxAddr + 1));
    bool IsWrite = Rng.nextBool(0.35);
    C.access(Cpu, A, IsWrite);
    if (I % 64 == 0)
      checkInvariants(C, MaxAddr);
  }
  checkInvariants(C, MaxAddr);

  const CacheStats &S = C.stats();
  EXPECT_EQ(S.Accesses, 4000u);
  EXPECT_EQ(S.Hits + S.Misses, S.Accesses);
}

TEST_P(MesiProperty, WriterAlwaysEndsModified) {
  CacheSim C(config());
  support::Xoshiro256 Rng(7);
  for (int I = 0; I < 1000; ++I) {
    uint32_t Cpu = static_cast<uint32_t>(
        Rng.nextBelow(config().NumCpus));
    isa::Addr A = static_cast<isa::Addr>(Rng.nextBelow(128));
    C.access(Cpu, A, /*IsWrite=*/true);
    ASSERT_EQ(C.stateOf(Cpu, C.lineOf(A)), LineState::Modified);
  }
}

TEST_P(MesiProperty, ReaderAlwaysEndsValid) {
  CacheSim C(config());
  support::Xoshiro256 Rng(9);
  for (int I = 0; I < 1000; ++I) {
    uint32_t Cpu = static_cast<uint32_t>(
        Rng.nextBelow(config().NumCpus));
    isa::Addr A = static_cast<isa::Addr>(Rng.nextBelow(128));
    C.access(Cpu, A, /*IsWrite=*/false);
    LineState St = C.stateOf(Cpu, C.lineOf(A));
    ASSERT_TRUE(St == LineState::Shared || St == LineState::Exclusive ||
                St == LineState::Modified);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MesiProperty,
    testing::Values(Geometry{2, 1, 4, 1}, Geometry{2, 1, 8, 2},
                    Geometry{4, 2, 16, 4}, Geometry{4, 4, 4, 2},
                    Geometry{8, 1, 64, 4}, Geometry{3, 8, 2, 1}),
    geometryName);
