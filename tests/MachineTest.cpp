//===- tests/MachineTest.cpp - Unit tests for the VM -----------------------===//

#include "isa/Assembler.h"
#include "vm/Machine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::isa;
using namespace svd::vm;

namespace {

Program asmProg(const std::string &Src) { return assembleOrDie(Src); }

/// Counts events per kind.
struct CountingObserver : ExecutionObserver {
  int Loads = 0, Stores = 0, Alus = 0, Branches = 0, Locks = 0,
      Unlocks = 0, Errors = 0, Prints = 0, Finished = 0, RunEnds = 0;
  void onLoad(const EventCtx &, Addr, Word) override { ++Loads; }
  void onStore(const EventCtx &, Addr, Word) override { ++Stores; }
  void onAlu(const EventCtx &) override { ++Alus; }
  void onBranch(const EventCtx &, bool, uint32_t) override { ++Branches; }
  void onLock(const EventCtx &, uint32_t) override { ++Locks; }
  void onUnlock(const EventCtx &, uint32_t) override { ++Unlocks; }
  void onProgramError(const EventCtx &, const char *) override { ++Errors; }
  void onPrint(const EventCtx &, Word) override { ++Prints; }
  void onThreadFinished(const EventCtx &) override { ++Finished; }
  void onRunEnd() override { ++RunEnds; }
};

} // namespace

TEST(Machine, ArithmeticAndPrint) {
  Program P = asmProg(R"(
.thread t
  li r1, 6
  li r2, 7
  mul r3, r1, r2
  print r3
  sub r4, r3, r1
  print r4
  halt
)");
  Machine M(P);
  EXPECT_EQ(M.run(), StopReason::AllHalted);
  ASSERT_EQ(M.printed().size(), 2u);
  EXPECT_EQ(M.printed()[0].Value, 42);
  EXPECT_EQ(M.printed()[1].Value, 36);
}

TEST(Machine, AllAluOps) {
  Program P = asmProg(R"(
.thread t
  li r1, 12
  li r2, 5
  add r3, r1, r2
  print r3        ; 17
  div r3, r1, r2
  print r3        ; 2
  rem r3, r1, r2
  print r3        ; 2
  and r3, r1, r2
  print r3        ; 4
  or  r3, r1, r2
  print r3        ; 13
  xor r3, r1, r2
  print r3        ; 9
  shl r3, r1, r2
  print r3        ; 384
  shr r3, r1, r2
  print r3        ; 0
  slt r3, r2, r1
  print r3        ; 1
  sle r3, r1, r1
  print r3        ; 1
  seq r3, r1, r2
  print r3        ; 0
  sne r3, r1, r2
  print r3        ; 1
  slti r3, r1, 13
  print r3        ; 1
  andi r3, r1, 4
  print r3        ; 4
  muli r3, r2, -3
  print r3        ; -15
  halt
)");
  Machine M(P);
  M.run();
  std::vector<Word> Want = {17, 2, 2, 4, 13, 9, 384, 0, 1, 1, 0, 1, 1, 4,
                            -15};
  ASSERT_EQ(M.printed().size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I)
    EXPECT_EQ(M.printed()[I].Value, Want[I]) << "print #" << I;
}

TEST(Machine, DivisionByZeroYieldsZero) {
  Program P = asmProg(R"(
.thread t
  li r1, 9
  li r2, 0
  div r3, r1, r2
  print r3
  rem r4, r1, r2
  print r4
  halt
)");
  Machine M(P);
  M.run();
  EXPECT_EQ(M.printed()[0].Value, 0);
  EXPECT_EQ(M.printed()[1].Value, 0);
}

TEST(Machine, ZeroRegisterIsHardwired) {
  Program P = asmProg(R"(
.thread t
  li r0, 99
  print r0
  halt
)");
  Machine M(P);
  M.run();
  EXPECT_EQ(M.printed()[0].Value, 0);
}

TEST(Machine, LoadsAndStores) {
  Program P = asmProg(R"(
.global cell
.global arr 4
.thread t
  li r1, 11
  st r1, [@cell]
  ld r2, [@cell]
  print r2
  li r3, 2          ; index
  li r4, 55
  st r4, [r3+@arr]
  ld r5, [r3+@arr]
  print r5
  halt
)");
  Machine M(P);
  M.run();
  EXPECT_EQ(M.printed()[0].Value, 11);
  EXPECT_EQ(M.printed()[1].Value, 55);
  EXPECT_EQ(M.readMem(P.addressOf("arr", 0, 2)), 55);
}

TEST(Machine, TidAndThreadLocals) {
  Program P = asmProg(R"(
.local mine
.global out 4
.thread t x3
  tid r1
  addi r2, r1, 100
  st r2, [@mine]
  ld r3, [@mine]
  st r3, [r1+@out]
  halt
)");
  Machine M(P);
  EXPECT_EQ(M.run(), StopReason::AllHalted);
  for (ThreadId Tid = 0; Tid < 3; ++Tid)
    EXPECT_EQ(M.readMem(P.addressOf("out", 0, Tid)), 100 + Tid);
}

TEST(Machine, LoopExecutes) {
  Program P = asmProg(R"(
.thread t
  li r1, 5
  li r2, 0
loop:
  add r2, r2, r1
  addi r1, r1, -1
  bnez r1, loop
  print r2
  halt
)");
  Machine M(P);
  M.run();
  EXPECT_EQ(M.printed()[0].Value, 15);
}

TEST(Machine, MutexProvidesMutualExclusion) {
  // Racing counter increments under a lock must not lose updates.
  Program P = asmProg(R"(
.global counter
.lock m
.thread t x4
  li r5, 50
loop:
  lock @m
  ld r1, [@counter]
  addi r1, r1, 1
  st r1, [@counter]
  unlock @m
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  for (uint64_t Seed : {1u, 7u, 42u}) {
    MachineConfig Cfg;
    Cfg.SchedSeed = Seed;
    Machine M(P, Cfg);
    EXPECT_EQ(M.run(), StopReason::AllHalted);
    EXPECT_EQ(M.readMem(P.addressOf("counter")), 200) << "seed " << Seed;
  }
}

TEST(Machine, UnlockedCounterLosesUpdatesForSomeSeed) {
  // The same increments without the lock must drop updates for at least
  // one of a handful of seeds — demonstrating the races are real.
  Program P = asmProg(R"(
.global counter
.thread t x4
  li r5, 50
loop:
  ld r1, [@counter]
  addi r1, r1, 1
  st r1, [@counter]
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  bool Lost = false;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    MachineConfig Cfg;
    Cfg.SchedSeed = Seed;
    Machine M(P, Cfg);
    M.run();
    if (M.readMem(P.addressOf("counter")) != 200)
      Lost = true;
  }
  EXPECT_TRUE(Lost);
}

TEST(Machine, DeadlockDetected) {
  Program P = asmProg(R"(
.lock a
.lock b
.thread t1
  lock @a
  yield
  lock @b
  halt
.thread t2
  lock @b
  yield
  lock @a
  halt
)");
  // Search a few seeds for the classic ABBA deadlock.
  bool SawDeadlock = false;
  for (uint64_t Seed = 1; Seed <= 20 && !SawDeadlock; ++Seed) {
    MachineConfig Cfg;
    Cfg.SchedSeed = Seed;
    Machine M(P, Cfg);
    SawDeadlock = M.run() == StopReason::Deadlock;
  }
  EXPECT_TRUE(SawDeadlock);
}

TEST(Machine, RecursiveLockFaults) {
  Program P = asmProg(R"(
.lock m
.thread t
  lock @m
  lock @m
  halt
)");
  Machine M(P);
  M.run();
  ASSERT_EQ(M.errors().size(), 1u);
  EXPECT_NE(M.errors()[0].Message.find("recursive"), std::string::npos);
}

TEST(Machine, UnlockNotHeldFaults) {
  Program P = asmProg(R"(
.lock m
.thread t
  unlock @m
  halt
)");
  Machine M(P);
  M.run();
  ASSERT_EQ(M.errors().size(), 1u);
}

TEST(Machine, AssertFailureRecordsErrorAndHaltsThread) {
  Program P = asmProg(R"(
.thread t
  li r1, 0
  assert r1, "boom"
  print r1      ; never reached
  halt
)");
  Machine M(P);
  EXPECT_EQ(M.run(), StopReason::AllHalted);
  ASSERT_EQ(M.errors().size(), 1u);
  EXPECT_EQ(M.errors()[0].Message, "boom");
  EXPECT_TRUE(M.printed().empty());
}

TEST(Machine, AssertPassIsSilent) {
  Program P = asmProg(R"(
.thread t
  li r1, 1
  assert r1, "fine"
  halt
)");
  Machine M(P);
  M.run();
  EXPECT_TRUE(M.errors().empty());
}

TEST(Machine, OutOfRangeAccessFaults) {
  Program P = asmProg(R"(
.global g
.thread t
  li r1, 100000
  ld r2, [r1]
  halt
)");
  Machine M(P);
  M.run();
  ASSERT_EQ(M.errors().size(), 1u);
  EXPECT_NE(M.errors()[0].Message.find("out-of-range"), std::string::npos);
}

TEST(Machine, SameSeedSameExecution) {
  Program P = asmProg(R"(
.global x
.thread t x3
  rnd r1, 100
loop:
  ld r2, [@x]
  add r2, r2, r1
  st r2, [@x]
  addi r1, r1, -7
  bnez r1, cont
  jmp done
cont:
  slti r3, r1, 0
  beqz r3, loop
done:
  halt
)");
  MachineConfig Cfg;
  Cfg.SchedSeed = 99;
  Machine M1(P, Cfg);
  Machine M2(P, Cfg);
  M1.run();
  M2.run();
  EXPECT_EQ(M1.steps(), M2.steps());
  EXPECT_EQ(M1.schedule(), M2.schedule());
  EXPECT_EQ(M1.readMem(P.addressOf("x")), M2.readMem(P.addressOf("x")));
}

TEST(Machine, DifferentSeedsUsuallyDiverge) {
  Program P = asmProg(R"(
.global x
.thread t x2
  li r5, 30
loop:
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  MachineConfig C1, C2;
  C1.SchedSeed = 1;
  C2.SchedSeed = 2;
  Machine M1(P, C1), M2(P, C2);
  M1.run();
  M2.run();
  EXPECT_NE(M1.schedule(), M2.schedule());
}

TEST(Machine, ReplayReproducesExecution) {
  Program P = asmProg(R"(
.global x
.thread t x3
  li r5, 20
loop:
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  MachineConfig Cfg;
  Cfg.SchedSeed = 1234;
  Machine M1(P, Cfg);
  M1.run();
  Word Final = M1.readMem(P.addressOf("x"));

  // Replay with a *different* seed but the recorded schedule.
  MachineConfig Cfg2;
  Cfg2.SchedSeed = 777;
  Machine M2(P, Cfg2);
  M2.setReplaySchedule(M1.schedule());
  M2.run();
  EXPECT_EQ(M2.readMem(P.addressOf("x")), Final);
  EXPECT_EQ(M2.steps(), M1.steps());
}

TEST(Machine, CheckpointRestoreRewindsState) {
  Program P = asmProg(R"(
.global x
.thread t
  li r1, 1
  st r1, [@x]
  li r2, 2
  st r2, [@x]
  halt
)");
  Machine M(P);
  StopReason R;
  // Execute "li; st" (2 steps), checkpoint, run to completion, restore.
  ASSERT_TRUE(M.stepOnce(R));
  ASSERT_TRUE(M.stepOnce(R));
  Checkpoint C = M.checkpoint();
  EXPECT_EQ(M.readMem(P.addressOf("x")), 1);
  M.run();
  EXPECT_EQ(M.readMem(P.addressOf("x")), 2);
  M.restore(C);
  EXPECT_EQ(M.readMem(P.addressOf("x")), 1);
  EXPECT_EQ(M.steps(), 2u);
  // Re-running finishes again.
  EXPECT_EQ(M.run(), StopReason::AllHalted);
  EXPECT_EQ(M.readMem(P.addressOf("x")), 2);
}

TEST(Machine, CheckpointDropsLaterErrorsOnRestore) {
  Program P = asmProg(R"(
.thread t
  li r1, 0
  assert r1, "late"
  halt
)");
  Machine M(P);
  Checkpoint C = M.checkpoint();
  M.run();
  EXPECT_EQ(M.errors().size(), 1u);
  M.restore(C);
  EXPECT_TRUE(M.errors().empty());
}

TEST(Machine, StepBudgetStopsInfiniteLoop) {
  Program P = asmProg(R"(
.thread t
spin:
  jmp spin
)");
  MachineConfig Cfg;
  Cfg.MaxSteps = 1000;
  Machine M(P, Cfg);
  EXPECT_EQ(M.run(), StopReason::StepBudget);
  EXPECT_EQ(M.steps(), 1000u);
}

TEST(Machine, SerialModeRunsOneThreadToCompletion) {
  Program P = asmProg(R"(
.thread t x3
  li r5, 10
loop:
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  MachineConfig Cfg;
  Cfg.SerialMode = true;
  Machine M(P, Cfg);
  M.run();
  // The schedule must be three contiguous runs of one thread each.
  const auto &S = M.schedule();
  int Switches = 0;
  for (size_t I = 1; I < S.size(); ++I)
    if (S[I] != S[I - 1])
      ++Switches;
  EXPECT_EQ(Switches, 2);
}

TEST(Machine, TimesliceReducesSwitchFrequency) {
  Program P = asmProg(R"(
.thread t x2
  li r5, 200
loop:
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  auto CountSwitches = [&](uint32_t MinTs, uint32_t MaxTs) {
    MachineConfig Cfg;
    Cfg.SchedSeed = 5;
    Cfg.MinTimeslice = MinTs;
    Cfg.MaxTimeslice = MaxTs;
    Machine M(P, Cfg);
    M.run();
    const auto &S = M.schedule();
    int N = 0;
    for (size_t I = 1; I < S.size(); ++I)
      if (S[I] != S[I - 1])
        ++N;
    return N;
  };
  EXPECT_GT(CountSwitches(1, 1), CountSwitches(50, 100));
}

TEST(Machine, ObserverSeesAllEventKinds) {
  Program P = asmProg(R"(
.global g
.lock m
.thread t
  li r1, 5
  lock @m
  st r1, [@g]
  ld r2, [@g]
  unlock @m
  print r2
  beqz r0, end
end:
  halt
)");
  Machine M(P);
  CountingObserver Obs;
  M.addObserver(&Obs);
  M.run();
  EXPECT_EQ(Obs.Loads, 1);
  EXPECT_EQ(Obs.Stores, 1);
  EXPECT_EQ(Obs.Alus, 2); // li and print both count as register events
  EXPECT_EQ(Obs.Branches, 1);
  EXPECT_EQ(Obs.Locks, 1);
  EXPECT_EQ(Obs.Unlocks, 1);
  EXPECT_EQ(Obs.Prints, 1);
  EXPECT_EQ(Obs.Finished, 1);
  EXPECT_EQ(Obs.RunEnds, 1);
}

TEST(Machine, RemoveObserverStopsEvents) {
  Program P = asmProg(R"(
.thread t
  li r1, 1
  li r2, 2
  halt
)");
  Machine M(P);
  CountingObserver Obs;
  M.addObserver(&Obs);
  StopReason R;
  M.stepOnce(R);
  M.removeObserver(&Obs);
  M.run();
  EXPECT_EQ(Obs.Alus, 1);
}

TEST(Machine, RunEndNotifiedOnce) {
  Program P = asmProg(".thread t\n  halt\n");
  Machine M(P);
  CountingObserver Obs;
  M.addObserver(&Obs);
  M.run();
  M.notifyRunEnd();
  EXPECT_EQ(Obs.RunEnds, 1);
}

TEST(Machine, RndIsScheduleIndependent) {
  // The rnd streams are per-thread: thread 0's draws are the same no
  // matter how threads interleave.
  Program P = asmProg(R"(
.global sink 8
.thread t x2
  tid r1
  rnd r2, 1000
  st r2, [r1+@sink]
  halt
)");
  MachineConfig C1, C2;
  C1.SchedSeed = 10;
  C2.SchedSeed = 20;
  C1.RndSeed = C2.RndSeed = 5;
  Machine M1(P, C1), M2(P, C2);
  M1.run();
  M2.run();
  EXPECT_EQ(M1.readMem(P.addressOf("sink", 0, 0)),
            M2.readMem(P.addressOf("sink", 0, 0)));
  EXPECT_EQ(M1.readMem(P.addressOf("sink", 0, 1)),
            M2.readMem(P.addressOf("sink", 0, 1)));
}

TEST(Machine, RunUntilPauses) {
  Program P = asmProg(R"(
.thread t
  li r1, 1
  li r2, 2
  li r3, 3
  halt
)");
  Machine M(P);
  StopReason R = M.runUntil([&] { return M.steps() == 2; });
  EXPECT_EQ(R, StopReason::Paused);
  EXPECT_EQ(M.steps(), 2u);
  EXPECT_EQ(M.run(), StopReason::AllHalted);
}

TEST(Machine, DivRemByZeroAndOverflow) {
  // The two inputs C++ leaves undefined are pinned by the machine:
  // division by zero yields 0, and INT64_MIN / -1 wraps to INT64_MIN
  // (with remainder 0), consistent with the wrapping Add/Mul.
  Program P = asmProg(R"(
.thread t
  li r1, 7
  li r2, 0
  div r3, r1, r2
  print r3        ; 0
  rem r3, r1, r2
  print r3        ; 0
  li r1, 1
  li r2, 63
  shl r1, r1, r2  ; r1 = INT64_MIN
  li r2, -1
  div r3, r1, r2
  print r3        ; INT64_MIN
  rem r3, r1, r2
  print r3        ; 0
  halt
)");
  Machine M(P);
  EXPECT_EQ(M.run(), StopReason::AllHalted);
  ASSERT_EQ(M.printed().size(), 4u);
  EXPECT_EQ(M.printed()[0].Value, 0);
  EXPECT_EQ(M.printed()[1].Value, 0);
  EXPECT_EQ(M.printed()[2].Value, INT64_MIN);
  EXPECT_EQ(M.printed()[3].Value, 0);
}

TEST(Machine, RndStreamsIndependentOfSchedule) {
  // Each thread's rnd stream is seeded from (RndSeed, Tid) only, so the
  // values a thread draws must not change when the scheduler interleaves
  // the threads differently.
  Program P = asmProg(R"(
.thread t x2
  li r5, 6
loop:
  rnd r1, 1000
  print r1
  yield
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  auto PerThreadPrints = [&](uint64_t SchedSeed) {
    MachineConfig C;
    C.SchedSeed = SchedSeed;
    C.RndSeed = 42;
    C.MinTimeslice = 1;
    C.MaxTimeslice = 7;
    Machine M(P, C);
    EXPECT_EQ(M.run(), StopReason::AllHalted);
    std::vector<std::vector<Word>> ByTid(P.numThreads());
    for (const PrintedValue &V : M.printed())
      ByTid[V.Tid].push_back(V.Value);
    return ByTid;
  };
  auto A = PerThreadPrints(1);
  auto B = PerThreadPrints(99);
  ASSERT_EQ(A.size(), B.size());
  for (size_t Tid = 0; Tid < A.size(); ++Tid) {
    EXPECT_EQ(A[Tid].size(), 6u);
    EXPECT_EQ(A[Tid], B[Tid]) << "thread " << Tid;
  }
}

TEST(Machine, StepThreadDrivesANamedThread) {
  Program P = asmProg(R"(
.global x
.thread a
  li r1, 1
  st r1, [@x]
  halt
.thread b
  li r2, 2
  st r2, [@x]
  halt
)");
  Machine M(P);
  StopReason R;
  // Drive thread 1 first, against the scheduler's natural order.
  EXPECT_EQ(M.threadPc(1), 0u);
  ASSERT_TRUE(M.stepThread(1, R));
  ASSERT_TRUE(M.stepThread(1, R));
  EXPECT_EQ(M.threadPc(1), 2u);
  EXPECT_EQ(M.threadPc(0), 0u);
  EXPECT_EQ(M.readMem(M.program().addressOf("x")), 2u);
  // The directed prefix is part of the recorded schedule.
  EXPECT_EQ(M.schedule(), (std::vector<ThreadId>{1, 1}));
  // The run can finish normally afterwards.
  EXPECT_EQ(M.run(), StopReason::AllHalted);
}

TEST(Machine, StepThreadRefusesBlockedThread) {
  Program P = asmProg(R"(
.lock m
.thread a
  lock @m
  unlock @m
  halt
.thread b
  lock @m
  unlock @m
  halt
)");
  Machine M(P);
  StopReason R;
  ASSERT_TRUE(M.stepThread(0, R)); // a takes the lock
  ASSERT_TRUE(M.stepThread(1, R)); // b's lock attempt blocks it
  EXPECT_EQ(M.threadState(1), ThreadState::Blocked);
  // A blocked thread cannot be single-stepped; the machine reports a
  // pause rather than silently running someone else.
  EXPECT_FALSE(M.stepThread(1, R));
  EXPECT_EQ(R, StopReason::Paused);
  // Nor can a finished one once everything halts.
  EXPECT_EQ(M.run(), StopReason::AllHalted);
  EXPECT_FALSE(M.stepThread(0, R));
}

TEST(Machine, StepThreadHonoursStepBudget) {
  Program P = asmProg(R"(
.thread t
loop:
  jmp loop
)");
  MachineConfig C;
  C.MaxSteps = 5;
  Machine M(P, C);
  StopReason R;
  for (int I = 0; I < 5; ++I)
    ASSERT_TRUE(M.stepThread(0, R));
  EXPECT_FALSE(M.stepThread(0, R));
  EXPECT_EQ(R, StopReason::StepBudget);
}

//===----------------------------------------------------------------------===//
// Call / Ret and the bounded call stack
//===----------------------------------------------------------------------===//

TEST(Machine, CallRetExecutes) {
  Program P = asmProg(R"(
.thread t
  li r1, 20
  call bump
  call bump
  print r1
  halt
.proc bump
  addi r1, r1, 11
  ret
)");
  Machine M(P);
  EXPECT_EQ(M.run(), StopReason::AllHalted);
  ASSERT_EQ(M.printed().size(), 1u);
  EXPECT_EQ(M.printed()[0].Value, 42);
  EXPECT_TRUE(M.errors().empty());
  EXPECT_TRUE(M.callStack(0).empty());
}

TEST(Machine, NestedCallsUnwindInOrder) {
  Program P = asmProg(R"(
.thread t
  call outer
  print r1
  halt
.proc outer
  addi r1, r1, 1
  call inner
  addi r1, r1, 100
  ret
.proc inner
  addi r1, r1, 10
  ret
)");
  Machine M(P);
  M.run();
  ASSERT_EQ(M.printed().size(), 1u);
  EXPECT_EQ(M.printed()[0].Value, 111);
}

TEST(Machine, CallStackOverflowFaultIsContained) {
  // Unbounded recursion must fault the offending thread with a
  // classified error and leave the other thread's run untouched.
  Program P = asmProg(R"(
.thread sink
  call forever
  print r1     ; never reached
  halt
.thread bystander
  li r2, 7
  print r2
  halt
.proc forever
  call forever
  ret
)");
  MachineConfig Cfg;
  Cfg.MaxCallDepth = 8;
  Machine M(P, Cfg);
  EXPECT_EQ(M.run(), StopReason::AllHalted);
  ASSERT_EQ(M.errors().size(), 1u);
  EXPECT_NE(M.errors()[0].Message.find("call stack overflow"),
            std::string::npos);
  EXPECT_EQ(M.errors()[0].Tid, 0);
  ASSERT_EQ(M.printed().size(), 1u);
  EXPECT_EQ(M.printed()[0].Value, 7);
}

TEST(Machine, CheckpointRestoreWithLiveCallStack) {
  Program P = asmProg(R"(
.thread t
  li r1, 0
  call deep
  print r1
  halt
.proc deep
  addi r1, r1, 1
  call leaf
  ret
.proc leaf
  addi r1, r1, 10
  ret
)");
  Machine M(P);
  // Step until the thread is two frames deep (inside leaf).
  StopReason R;
  while (M.callStack(0).size() < 2)
    ASSERT_TRUE(M.stepOnce(R));
  Checkpoint C = M.checkpoint();
  std::vector<uint32_t> Saved = M.callStack(0);
  ASSERT_EQ(Saved.size(), 2u);
  M.run();
  ASSERT_EQ(M.printed().size(), 1u);
  Word First = M.printed()[0].Value;
  EXPECT_EQ(First, 11);
  EXPECT_TRUE(M.callStack(0).empty());
  // Restore rewinds the stack itself, and the rerun unwinds it again.
  M.restore(C);
  EXPECT_EQ(M.callStack(0), Saved);
  EXPECT_EQ(M.run(), StopReason::AllHalted);
  ASSERT_EQ(M.printed().size(), 1u);
  EXPECT_EQ(M.printed()[0].Value, First);
}

TEST(Machine, ReplayReproducesExecutionWithCalls) {
  // The recorded schedule of a proc-structured racy run replays
  // bit-identically under a different seed.
  Program P = asmProg(R"(
.global x
.thread t x3
  li r5, 12
loop:
  call bump
  addi r5, r5, -1
  bnez r5, loop
  halt
.proc bump
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  ret
)");
  MachineConfig Cfg;
  Cfg.SchedSeed = 1234;
  Machine M1(P, Cfg);
  M1.run();
  Word Final = M1.readMem(P.addressOf("x"));

  MachineConfig Cfg2;
  Cfg2.SchedSeed = 777;
  Machine M2(P, Cfg2);
  M2.setReplaySchedule(M1.schedule());
  M2.run();
  EXPECT_EQ(M2.readMem(P.addressOf("x")), Final);
  EXPECT_EQ(M2.steps(), M1.steps());
  EXPECT_EQ(M2.schedule(), M1.schedule());
}

TEST(Machine, LargeFootprintCheckpointAndReplay) {
  // Checkpoint/restore and schedule replay stay exact on a workload
  // whose heap is orders of magnitude larger than the toy programs
  // above: a 16K-word sweep where four threads touch disjoint slabs
  // (the shadow suite's SparseSlabSweep family, scaled down).
  workloads::Workload W = workloads::sparseSlabSweep(4, 4096);
  const Addr Heap = W.Program.addressOf("heap");

  MachineConfig Cfg;
  Cfg.SchedSeed = 9;
  Cfg.MinTimeslice = 1;
  Cfg.MaxTimeslice = 4;
  Machine M1(W.Program, Cfg);

  StopReason R;
  for (int I = 0; I < 1000; ++I)
    ASSERT_TRUE(M1.stepOnce(R));
  Checkpoint C = M1.checkpoint();
  EXPECT_EQ(M1.steps(), 1000u);

  ASSERT_EQ(M1.run(), StopReason::AllHalted);
  const uint64_t Steps = M1.steps();
  const Word First = M1.readMem(Heap);
  const Word Last = M1.readMem(Heap + 4 * 4096 - 1);
  EXPECT_FALSE(W.Manifested(M1)); // slabs are disjoint: no bug to find

  // Rewinding to step 1000 and re-running reproduces the execution
  // bit-for-bit, including the untouched tail of the big heap.
  M1.restore(C);
  EXPECT_EQ(M1.steps(), 1000u);
  ASSERT_EQ(M1.run(), StopReason::AllHalted);
  EXPECT_EQ(M1.steps(), Steps);
  EXPECT_EQ(M1.readMem(Heap), First);
  EXPECT_EQ(M1.readMem(Heap + 4 * 4096 - 1), Last);

  // A fresh machine under a different seed, driven by the recorded
  // schedule, lands on the same final state.
  MachineConfig Cfg2 = Cfg;
  Cfg2.SchedSeed = 12345;
  Machine M2(W.Program, Cfg2);
  M2.setReplaySchedule(M1.schedule());
  ASSERT_EQ(M2.run(), StopReason::AllHalted);
  EXPECT_EQ(M2.steps(), Steps);
  EXPECT_EQ(M2.readMem(Heap), First);
  EXPECT_EQ(M2.readMem(Heap + 4 * 4096 - 1), Last);
}

TEST(Machine, CheckpointMidReplayRestoresReplayMode) {
  // A checkpoint taken while following a recorded schedule must restore
  // replay mode itself, not just the architectural state: a rollback
  // spanning a clearReplaySchedule otherwise resumes under the seeded
  // scheduler and silently diverges from the recording.
  Program P = asmProg(R"(
.global x
.thread t x2
  li r5, 15
loop:
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  MachineConfig Cfg;
  Cfg.SchedSeed = 4242;
  Machine M1(P, Cfg);
  M1.run();
  Word Final = M1.readMem(P.addressOf("x"));

  MachineConfig Cfg2;
  Cfg2.SchedSeed = 7; // different seed: divergence is visible if replay
                      // mode is lost across restore
  Machine M2(P, Cfg2);
  M2.setReplaySchedule(M1.schedule());
  StopReason R;
  for (int I = 0; I < 8; ++I)
    ASSERT_TRUE(M2.stepOnce(R));
  Checkpoint C = M2.checkpoint();

  // Leave replay mode and finish the run under the (different) seed.
  M2.clearReplaySchedule();
  M2.run();

  // The rollback must resume *in replay mode*, re-following the
  // recorded schedule from step 8 to the end.
  M2.restore(C);
  EXPECT_EQ(M2.run(), StopReason::AllHalted);
  EXPECT_EQ(M2.schedule(), M1.schedule());
  EXPECT_EQ(M2.steps(), M1.steps());
  EXPECT_EQ(M2.readMem(P.addressOf("x")), Final);
}

namespace {

/// Removes a configurable set of observers (possibly itself) from inside
/// its first onAlu callback.
struct RemovingObserver : ExecutionObserver {
  Machine *M = nullptr;
  std::vector<ExecutionObserver *> Victims;
  int Alus = 0;
  void onAlu(const EventCtx &) override {
    if (Alus++ == 0)
      for (ExecutionObserver *V : Victims)
        M->removeObserver(V);
  }
};

} // namespace

TEST(Machine, ObserverMayRemoveItselfDuringDispatch) {
  // An observer detaching itself mid-callback (as BER does on a
  // violation) must not disturb the fan-out: later observers still see
  // the current event, and the detached one sees nothing further.
  Program P = asmProg(R"(
.thread t
  li r1, 1
  li r2, 2
  li r3, 3
  halt
)");
  Machine M(P);
  RemovingObserver Self;
  Self.M = &M;
  Self.Victims = {&Self};
  CountingObserver After;
  M.addObserver(&Self);
  M.addObserver(&After);
  M.run();
  EXPECT_EQ(Self.Alus, 1);  // the event it detached on, nothing after
  EXPECT_EQ(After.Alus, 3); // saw every event, including the detach one
  EXPECT_EQ(After.RunEnds, 1);
}

TEST(Machine, ObserverMayRemoveOthersDuringDispatch) {
  // Removing observers before and after the running one keeps the
  // current event's fan-out exact: the earlier observer was already
  // notified, the later one must not be.
  Program P = asmProg(R"(
.thread t
  li r1, 1
  li r2, 2
  li r3, 3
  halt
)");
  Machine M(P);
  CountingObserver Before, After;
  RemovingObserver Remover;
  Remover.M = &M;
  Remover.Victims = {&Before, &After};
  M.addObserver(&Before);
  M.addObserver(&Remover);
  M.addObserver(&After);
  M.run();
  EXPECT_EQ(Before.Alus, 1); // notified before its removal, then gone
  EXPECT_EQ(Remover.Alus, 3);
  EXPECT_EQ(After.Alus, 0); // removed before its turn on the first event
}
