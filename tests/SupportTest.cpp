//===- tests/SupportTest.cpp - Unit tests for svd::support ----------------===//

#include "support/Cli.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <set>

using namespace svd::support;

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 A(42);
  SplitMix64 B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 A(1);
  SplitMix64 B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 A(7);
  Xoshiro256 B(7);
  for (int I = 0; I < 1000; ++I)
    ASSERT_EQ(A.next(), B.next());
}

TEST(Xoshiro256, NextBelowInRange) {
  Xoshiro256 R(3);
  for (int I = 0; I < 10000; ++I) {
    uint64_t V = R.nextBelow(7);
    ASSERT_LT(V, 7u);
  }
}

TEST(Xoshiro256, NextBelowOneIsAlwaysZero) {
  Xoshiro256 R(3);
  for (int I = 0; I < 100; ++I)
    ASSERT_EQ(R.nextBelow(1), 0u);
}

TEST(Xoshiro256, NextBelowCoversAllValues) {
  Xoshiro256 R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(R.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 R(9);
  for (int I = 0; I < 10000; ++I) {
    double D = R.nextDouble();
    ASSERT_GE(D, 0.0);
    ASSERT_LT(D, 1.0);
  }
}

TEST(Xoshiro256, NextBoolExtremes) {
  Xoshiro256 R(5);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(Xoshiro256, NextBoolRoughlyCalibrated) {
  Xoshiro256 R(13);
  int Hits = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Hits += R.nextBool(0.25);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.25, 0.01);
}

TEST(RunningStat, EmptyDefaults) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat S;
  S.add(5.0);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_EQ(S.mean(), 5.0);
  EXPECT_EQ(S.min(), 5.0);
  EXPECT_EQ(S.max(), 5.0);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(S.min(), 2.0);
  EXPECT_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.sum(), 40.0);
}

TEST(StringUtils, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(StringUtils, SplitBasic) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trimString("  x y \t"), "x y");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString(" \n "), "");
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("abcdef", "abc"));
  EXPECT_FALSE(startsWith("ab", "abc"));
  EXPECT_TRUE(startsWith("x", ""));
}

//===----------------------------------------------------------------------===//
// JSON helpers
//===----------------------------------------------------------------------===//

TEST(Json, EscapeCoversControlAndQuote) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(jsonEscape("nl\n"), "nl\\n");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, StringWrapsAndEscapes) {
  EXPECT_EQ(jsonString("x"), "\"x\"");
  EXPECT_EQ(jsonString("a\"b"), "\"a\\\"b\"");
}

TEST(Json, ValidateAcceptsWellFormedDocuments) {
  for (const char *Doc :
       {"{}", "[]", "null", "true", "-12.5e3", "\"s\"",
        R"({"a":[1,2,{"b":null}],"c":"\u00e9\n"})", "[[],[[]]]",
        "  {  \"k\" : 0 }  "}) {
    std::string Err;
    EXPECT_TRUE(jsonValidate(Doc, &Err)) << Doc << ": " << Err;
  }
}

TEST(Json, ValidateRejectsMalformedDocuments) {
  for (const char *Doc :
       {"", "{", "}", "[1,]", "{\"a\":}", "{'a':1}", "01", "+1", "1.",
        "\"unterminated", "\"bad\\q\"", "nul", "{} extra",
        "\"\\u12g4\"", "[1 2]"}) {
    std::string Err;
    EXPECT_FALSE(jsonValidate(Doc, &Err)) << Doc;
    EXPECT_FALSE(Err.empty()) << Doc;
  }
}

TEST(Json, ValidateRejectsExcessiveNesting) {
  std::string Deep(300, '[');
  Deep += std::string(300, ']');
  EXPECT_FALSE(jsonValidate(Deep, nullptr));
}

//===----------------------------------------------------------------------===//
// ArgParser (support/Cli.h)
//===----------------------------------------------------------------------===//

TEST(Cli, FlagsValuesAndPositionalsParse) {
  bool Json = false, Uninit = true;
  uint32_t Shift = 0;
  uint64_t Seed = 1;
  std::string Suite;
  ArgParser P("usage\n");
  P.flag("--json", &Json);
  P.flag("--no-uninit", &Uninit, false);
  P.value("--block-shift", &Shift);
  P.value("--seed", &Seed);
  P.value("--suite", &Suite);
  const char *Argv[] = {"tool",   "a.asm",         "--json", "--no-uninit",
                        "--block-shift", "0x2",    "--seed", "99",
                        "--suite", "table2",       "b.asm"};
  ASSERT_TRUE(P.parse(11, Argv));
  EXPECT_TRUE(Json);
  EXPECT_FALSE(Uninit);
  EXPECT_EQ(Shift, 2u); // strtoull base 0: 0x prefix works
  EXPECT_EQ(Seed, 99u);
  EXPECT_EQ(Suite, "table2");
  ASSERT_EQ(P.positional().size(), 2u);
  EXPECT_EQ(P.positional()[0], "a.asm");
  EXPECT_EQ(P.positional()[1], "b.asm");
}

TEST(Cli, UnknownDashOptionFailsParse) {
  ArgParser P("usage\n");
  const char *Argv[] = {"tool", "--bogus"};
  EXPECT_FALSE(P.parse(2, Argv));
}

TEST(Cli, MissingValueFailsParse) {
  uint64_t Seed = 0;
  ArgParser P("usage\n");
  P.value("--seed", &Seed);
  const char *Argv[] = {"tool", "--seed"};
  EXPECT_FALSE(P.parse(2, Argv));
}

TEST(Cli, ValueFnFansOutToMultipleTargets) {
  uint32_t A = 0, B = 0;
  ArgParser P("usage\n");
  P.valueFn("--block-shift", [&](uint64_t V) {
    A = static_cast<uint32_t>(V);
    B = static_cast<uint32_t>(V);
  });
  const char *Argv[] = {"tool", "--block-shift", "3"};
  ASSERT_TRUE(P.parse(3, Argv));
  EXPECT_EQ(A, 3u);
  EXPECT_EQ(B, 3u);
}

TEST(Cli, ExitCodesAreTheToolConvention) {
  EXPECT_EQ(ExitClean, 0);
  EXPECT_EQ(ExitFindings, 1);
  EXPECT_EQ(ExitUsage, 2);
}

//===----------------------------------------------------------------------===//
// ArgParser numeric validation (the pre-PR-4 parser accepted "99zz" as
// 99 and silently truncated uint32_t values; these pin the hardened
// behavior).
//===----------------------------------------------------------------------===//

namespace {

/// Parses "--seed <Value>" against a fresh uint64_t option; returns the
/// parser so callers can inspect error().
bool parseSeed(const char *Value, uint64_t &Seed, std::string &Error) {
  ArgParser P("usage\n");
  P.value("--seed", &Seed);
  const char *Argv[] = {"tool", "--seed", Value};
  bool Ok = P.parse(3, Argv);
  Error = P.error();
  return Ok;
}

} // namespace

TEST(Cli, NonNumericValueFailsWithDiagnostic) {
  uint64_t Seed = 7;
  std::string Err;
  EXPECT_FALSE(parseSeed("zz", Seed, Err));
  EXPECT_NE(Err.find("--seed"), std::string::npos) << Err;
  EXPECT_NE(Err.find("zz"), std::string::npos) << Err;
  EXPECT_EQ(Seed, 7u); // target untouched on failure
}

TEST(Cli, TrailingGarbageFailsInsteadOfTruncating) {
  uint64_t Seed = 7;
  std::string Err;
  EXPECT_FALSE(parseSeed("99zz", Seed, Err));
  EXPECT_NE(Err.find("99zz"), std::string::npos) << Err;
  EXPECT_NE(Err.find("--seed"), std::string::npos) << Err;
  EXPECT_EQ(Seed, 7u);
}

TEST(Cli, SignsAndEmptyValuesAreRejected) {
  uint64_t Seed = 7;
  std::string Err;
  EXPECT_FALSE(parseSeed("-1", Seed, Err));
  EXPECT_FALSE(parseSeed("+1", Seed, Err));
  EXPECT_FALSE(parseSeed("", Seed, Err));
  EXPECT_FALSE(parseSeed(" 1", Seed, Err));
  EXPECT_EQ(Seed, 7u);
}

TEST(Cli, OutOfRangeUint64Fails) {
  uint64_t Seed = 7;
  std::string Err;
  // 2^64 = 18446744073709551616 overflows uint64_t.
  EXPECT_FALSE(parseSeed("18446744073709551616", Seed, Err));
  EXPECT_NE(Err.find("out of range"), std::string::npos) << Err;
  // UINT64_MAX itself is fine.
  EXPECT_TRUE(parseSeed("18446744073709551615", Seed, Err));
  EXPECT_EQ(Seed, UINT64_MAX);
}

TEST(Cli, Uint32OverloadRejectsValuesAboveUint32MaxInsteadOfTruncating) {
  uint32_t Jobs = 7;
  ArgParser P("usage\n");
  P.value("--jobs", &Jobs);
  // 2^32 truncates to 0 under the old static_cast; now it must fail.
  const char *Argv[] = {"tool", "--jobs", "4294967296"};
  EXPECT_FALSE(P.parse(3, Argv));
  EXPECT_NE(P.error().find("--jobs"), std::string::npos) << P.error();
  EXPECT_NE(P.error().find("out of range"), std::string::npos) << P.error();
  EXPECT_EQ(Jobs, 7u);

  ArgParser Q("usage\n");
  Q.value("--jobs", &Jobs);
  const char *Argv2[] = {"tool", "--jobs", "4294967295"};
  EXPECT_TRUE(Q.parse(3, Argv2));
  EXPECT_EQ(Jobs, UINT32_MAX);
}

TEST(Cli, HexAndOctalPrefixesStillParse) {
  uint64_t Seed = 0;
  std::string Err;
  EXPECT_TRUE(parseSeed("0xFF", Seed, Err));
  EXPECT_EQ(Seed, 255u);
  EXPECT_TRUE(parseSeed("010", Seed, Err));
  EXPECT_EQ(Seed, 8u); // base 0: leading zero is octal
  EXPECT_FALSE(parseSeed("0x", Seed, Err)) << "bare 0x has no digits";
}

TEST(Cli, MissingValueDiagnosticNamesTheOption) {
  uint64_t Seed = 0;
  ArgParser P("usage\n");
  P.value("--seed", &Seed);
  const char *Argv[] = {"tool", "--seed"};
  EXPECT_FALSE(P.parse(2, Argv));
  EXPECT_NE(P.error().find("--seed"), std::string::npos) << P.error();
  EXPECT_NE(P.error().find("requires a value"), std::string::npos)
      << P.error();
}

TEST(Cli, UnknownOptionDiagnosticNamesTheOffender) {
  ArgParser P("usage\n");
  const char *Argv[] = {"tool", "--bogus"};
  EXPECT_FALSE(P.parse(2, Argv));
  EXPECT_NE(P.error().find("--bogus"), std::string::npos) << P.error();
}

TEST(Cli, ErrorIsEmptyBeforeAnyFailure) {
  ArgParser P("usage\n");
  EXPECT_TRUE(P.error().empty());
  const char *Argv[] = {"tool", "pos"};
  ASSERT_TRUE(P.parse(2, Argv));
  EXPECT_TRUE(P.error().empty());
}
