# End-to-end check of svd-chaos's JSON report. Runs the table1 suite
# through the canonical fault-plan matrix, requires a clean exit (every
# robustness invariant holds), validates the --report file with
# svd-json-check, and requires stdout (--json) to be byte-identical to
# the report file — one emitter, two sinks. Invoke with:
#
#   cmake -DCHAOS=<svd-chaos> -DCHECK=<svd-json-check> -DOUTDIR=<scratch>
#         -P ChaosCheck.cmake

file(MAKE_DIRECTORY "${OUTDIR}")
set(REPORT "${OUTDIR}/chaos_table1.json")

execute_process(COMMAND "${CHAOS}" --suite table1 --plans 4 --jobs 2
                        --json --report "${REPORT}"
                OUTPUT_VARIABLE STDOUT_DOC
                RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "svd-chaos exited ${RC} (robustness invariant "
                      "violated or crash)")
endif()

execute_process(COMMAND "${CHECK}" "${REPORT}"
                OUTPUT_QUIET
                RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "svd-json-check rejected ${REPORT}")
endif()

file(READ "${REPORT}" FILE_DOC)
if(NOT STDOUT_DOC STREQUAL FILE_DOC)
  message(FATAL_ERROR "--json stdout differs from the --report file")
endif()
