# End-to-end check of svd-serve's JSON sinks. Runs the serve suite
# through the ingestion-fault chaos matrix, requires a clean exit
# (every serve robustness invariant holds), validates the --report and
# --metrics-json files with svd-json-check, requires stdout (--json) to
# be byte-identical to the report file — one emitter, two sinks — and
# requires the metrics dump to carry the serve.* counter schema plus a
# per-shard shadow.shard<k>.bytes footprint line. Invoke with:
#
#   cmake -DSERVE=<svd-serve> -DCHECK=<svd-json-check> -DOUTDIR=<scratch>
#         -P ServeCheck.cmake

file(MAKE_DIRECTORY "${OUTDIR}")
set(REPORT "${OUTDIR}/serve_chaos.json")
set(METRICS "${OUTDIR}/serve_metrics.json")

execute_process(COMMAND "${SERVE}" --suite serve --chaos --jobs 2
                        --json --report "${REPORT}"
                        --metrics-json "${METRICS}"
                OUTPUT_VARIABLE STDOUT_DOC
                RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "svd-serve exited ${RC} (serve robustness invariant "
                      "violated or crash)")
endif()

execute_process(COMMAND "${CHECK}" "${REPORT}"
                OUTPUT_QUIET
                RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "svd-json-check rejected ${REPORT}")
endif()

execute_process(COMMAND "${CHECK}" "${METRICS}"
                OUTPUT_QUIET
                RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "svd-json-check rejected ${METRICS}")
endif()

file(READ "${REPORT}" FILE_DOC)
if(NOT STDOUT_DOC STREQUAL FILE_DOC)
  message(FATAL_ERROR "--json stdout differs from the --report file")
endif()

file(READ "${METRICS}" METRICS_DOC)
foreach(KEY "serve.sessions" "serve.frames_delivered" "serve.rejects."
        "shadow.shard0.bytes" "shadow.shard0.pages")
  string(FIND "${METRICS_DOC}" "\"${KEY}" AT)
  if(AT EQUAL -1)
    message(FATAL_ERROR "metrics dump is missing the '${KEY}' counter")
  endif()
endforeach()
