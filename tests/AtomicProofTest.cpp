//===- tests/AtomicProofTest.cpp - Static CU atomicity proof tests --------===//
//
// The prove-and-prune layer (analysis/AtomicProof.h): which units the
// two-phase-locking proof accepts, which obligations reject the buggy
// twins, and the three static diagnostic families it reports. Also
// pins the StaticLockset loop back-edge must-join the proofs' O1
// obligation depends on.
//
//===----------------------------------------------------------------------===//

#include "analysis/AtomicProof.h"
#include "analysis/StaticLockset.h"
#include "isa/Assembler.h"
#include "isa/Cfg.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::analysis;
using isa::Program;

namespace {

Program asmProg(const std::string &Src) { return isa::assembleOrDie(Src); }

bool hasDiag(const CuProofs &P, ProofDiag::Kind K) {
  for (const ProofDiag &D : P.diagnostics())
    if (D.K == K)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Proven units
//===----------------------------------------------------------------------===//

// The canonical provable shape: a consistently locked counter RMW.
// Every thread's load/increment/store unit is proven and both member
// accesses become prunable.
TEST(AtomicProof, LockedCounterRmwIsProven) {
  Program P = asmProg(R"(
.global counter
.lock m
.thread w x2
  li r5, 3
loop:
  lock @m
  ld r1, [@counter]
  addi r1, r1, 1
  st r1, [@counter]
  unlock @m
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  CuProofs Proofs = proveAtomicCus(P);
  ASSERT_EQ(Proofs.proven().size(), 2u);
  EXPECT_EQ(Proofs.prunableSites(), 4u);
  for (isa::ThreadId Tid = 0; Tid < 2; ++Tid) {
    // pc 2 = ld, pc 4 = st.
    EXPECT_TRUE(Proofs.provenAt(Tid, 2));
    EXPECT_TRUE(Proofs.provenAt(Tid, 4));
    // The lock/unlock and loop control are not access sites.
    EXPECT_FALSE(Proofs.provenAt(Tid, 1));
    EXPECT_FALSE(Proofs.provenAt(Tid, 5));
  }
  for (const ProvenCu &U : Proofs.proven())
    EXPECT_EQ(U.MutexId, 0u);
  EXPECT_TRUE(Proofs.diagnostics().empty());
}

// The same program without the lock: nothing is proven and, with no
// locked site anywhere, no inconsistent-lock diagnostic either (there
// is no locking discipline to be inconsistent with).
TEST(AtomicProof, UnlockedTwinNotProven) {
  Program P = asmProg(R"(
.global counter
.thread w x2
  li r5, 3
loop:
  ld r1, [@counter]
  addi r1, r1, 1
  st r1, [@counter]
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  CuProofs Proofs = proveAtomicCus(P);
  EXPECT_TRUE(Proofs.proven().empty());
  EXPECT_EQ(Proofs.prunableSites(), 0u);
  EXPECT_FALSE(hasDiag(Proofs, ProofDiag::Kind::InconsistentLock));
}

// Alias-group symmetry: when one thread locks the counter and another
// touches it bare, the locked thread's unit must NOT be proven (its
// group is not consistently protected), and the bare site draws the
// Eraser-style inconsistent-lock diagnostic.
TEST(AtomicProof, InconsistentLockingBlocksProofAndDiagnoses) {
  Program P = asmProg(R"(
.global counter
.lock m
.thread locked
  lock @m
  ld r1, [@counter]
  addi r1, r1, 1
  st r1, [@counter]
  unlock @m
  halt
.thread bare
  ld r2, [@counter]
  addi r2, r2, 1
  st r2, [@counter]
  halt
)");
  CuProofs Proofs = proveAtomicCus(P);
  EXPECT_TRUE(Proofs.proven().empty());
  EXPECT_EQ(Proofs.prunableSites(), 0u);
  ASSERT_TRUE(hasDiag(Proofs, ProofDiag::Kind::InconsistentLock));
  // The diagnostic points at the unprotected thread's sites.
  for (const ProofDiag &D : Proofs.diagnostics())
    if (D.K == ProofDiag::Kind::InconsistentLock)
      EXPECT_EQ(D.Tid, 1u);
}

// O1: releasing and reacquiring the common lock inside one unit (the
// classic atomicity gap) fails two-phase coverage — not proven, and
// the non-two-phase diagnostic names the lock.
TEST(AtomicProof, NonTwoPhaseRegionDiagnosed) {
  Program P = asmProg(R"(
.global x
.lock m
.thread t x2
  lock @m
  ld r1, [@x]
  unlock @m
  lock @m
  addi r1, r1, 1
  st r1, [@x]
  unlock @m
  halt
)");
  CuProofs Proofs = proveAtomicCus(P);
  EXPECT_TRUE(Proofs.proven().empty());
  ASSERT_TRUE(hasDiag(Proofs, ProofDiag::Kind::NonTwoPhase));
  for (const ProofDiag &D : Proofs.diagnostics())
    if (D.K == ProofDiag::Kind::NonTwoPhase)
      EXPECT_NE(D.Message.find("'m'"), std::string::npos);
}

// O2: a Cas member disqualifies the unit — Cas is the annotation-free
// synchronization primitive and must never be pruned from the event
// stream, even when a lock covers it.
TEST(AtomicProof, CasMemberBlocksProof) {
  Program P = asmProg(R"(
.global counter
.lock m
.thread w x2
  lock @m
  ld r1, [@counter]
  addi r2, r1, 1
  cas r3, r1, r2, [@counter]
  unlock @m
  halt
)");
  CuProofs Proofs = proveAtomicCus(P);
  EXPECT_TRUE(Proofs.proven().empty());
  EXPECT_EQ(Proofs.prunableSites(), 0u);
}

// AB-BA: two threads acquiring two mutexes in conflicting orders draw
// the static lock-order-cycle diagnostic.
TEST(AtomicProof, LockOrderCycleDiagnosed) {
  Program P = asmProg(R"(
.global x
.global y
.lock a
.lock b
.thread fwd
  lock @a
  lock @b
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@y]
  unlock @b
  unlock @a
  halt
.thread rev
  lock @b
  lock @a
  ld r2, [@y]
  addi r2, r2, 1
  st r2, [@x]
  unlock @a
  unlock @b
  halt
)");
  CuProofs Proofs = proveAtomicCus(P);
  EXPECT_TRUE(hasDiag(Proofs, ProofDiag::Kind::LockOrderCycle));
}

// Consistent nesting (both threads a-then-b) has no cycle.
TEST(AtomicProof, ConsistentNestingHasNoCycle) {
  Program P = asmProg(R"(
.global x
.lock a
.lock b
.thread t x2
  lock @a
  lock @b
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  unlock @b
  unlock @a
  halt
)");
  CuProofs Proofs = proveAtomicCus(P);
  EXPECT_FALSE(hasDiag(Proofs, ProofDiag::Kind::LockOrderCycle));
}

//===----------------------------------------------------------------------===//
// Workload-level expectations
//===----------------------------------------------------------------------===//

// The prove-and-prune showcase workloads behave as advertised: every
// counter access of lockedCounters is prunable; tidSlab's checksum RMW
// is proven while its slab accesses are ValueFlow-filtered instead
// (not proof-pruned — they are ThreadLocal, not lock-protected).
TEST(AtomicProof, ShowcaseWorkloads) {
  workloads::WorkloadParams WP;
  WP.Threads = 4;
  WP.Iterations = 8;
  WP.WorkPadding = 4;
  CuProofs Locked = proveAtomicCus(workloads::lockedCounters(WP).Program);
  EXPECT_EQ(Locked.proven().size(), 4u);
  EXPECT_EQ(Locked.prunableSites(), 8u);

  CuProofs Slab = proveAtomicCus(workloads::tidSlab(WP).Program);
  EXPECT_EQ(Slab.proven().size(), 4u);
  EXPECT_TRUE(Slab.diagnostics().empty());
}

// The paper workloads: PgSQL's per-warehouse locked sections contain
// provable units; MySQL's inconsistent tot_lock discipline (Figure 1's
// benign race) correctly blocks every proof.
TEST(AtomicProof, PaperWorkloads) {
  workloads::WorkloadParams WP;
  WP.Threads = 4;
  WP.Iterations = 8;
  WP.WorkPadding = 4;
  WP.TouchOneIn = 2;
  CuProofs Pg = proveAtomicCus(workloads::pgsqlOltp(WP).Program);
  EXPECT_FALSE(Pg.proven().empty());
  CuProofs My = proveAtomicCus(workloads::mysqlPrepared(WP).Program);
  EXPECT_TRUE(My.proven().empty());
}

//===----------------------------------------------------------------------===//
// StaticLockset must-join over loop back edges
//===----------------------------------------------------------------------===//

// Regression for the O1 substrate: the must-held set at a loop head is
// the intersection over ALL incoming paths, including the back edge. A
// lock held on loop entry but released before the back edge must not
// be must-held at the head (a solver that forgets to re-meet the back
// edge would claim it is, and O1 would prove an unprovable unit).
TEST(StaticLocksetRegression, LoopBackEdgeMustJoin) {
  Program P = asmProg(R"(
.global x
.lock m
.thread t
  li r5, 3
  lock @m
loop:
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  unlock @m
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  const std::vector<isa::Instruction> &Code = P.Threads[0].Code;
  isa::ThreadCfg Cfg(Code);
  StaticLockset LS(Cfg, Code, 1);
  ASSERT_TRUE(LS.analyzable());
  // pc 2 is the loop head (the ld): reached with m held from entry but
  // bare from the back edge -> must = empty, may = {m}.
  EXPECT_EQ(LS.mustHeldBefore(2), 0u);
  EXPECT_EQ(LS.mayHeldBefore(2), 1u);
  // Inside the first iteration's critical section the store is still
  // only may-protected for the same reason.
  EXPECT_EQ(LS.mustHeldBefore(4), 0u);
  // And the proof machinery agrees: nothing is proven here.
  EXPECT_TRUE(proveAtomicCus(P).proven().empty());
}
