//===- tests/ScheduleFileTest.cpp - Schedule (de)serialization tests -------===//

#include "TestUtil.h"
#include "vm/ScheduleFile.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace svd;
using namespace svd::vm;

TEST(ScheduleFile, RoundTripsEmpty) {
  RecordedSchedule R;
  R.RndSeed = 42;
  std::string Text = serializeSchedule(R);
  RecordedSchedule Out;
  std::string Error;
  ASSERT_TRUE(parseSchedule(Text, Out, Error)) << Error;
  EXPECT_EQ(Out.RndSeed, 42u);
  EXPECT_TRUE(Out.Schedule.empty());
}

TEST(ScheduleFile, RoundTripsRunLengths) {
  RecordedSchedule R;
  R.RndSeed = 7;
  R.Schedule = {0, 0, 0, 1, 2, 2, 0, 1, 1, 1, 1};
  RecordedSchedule Out;
  std::string Error;
  ASSERT_TRUE(parseSchedule(serializeSchedule(R), Out, Error)) << Error;
  EXPECT_EQ(Out.RndSeed, R.RndSeed);
  EXPECT_EQ(Out.Schedule, R.Schedule);
}

TEST(ScheduleFile, EncodingIsCompact) {
  RecordedSchedule R;
  R.Schedule.assign(10000, 3);
  std::string Text = serializeSchedule(R);
  EXPECT_LT(Text.size(), 100u) << "run-length encoding expected";
  EXPECT_NE(Text.find("3*10000"), std::string::npos);
}

TEST(ScheduleFile, RejectsBadHeader) {
  RecordedSchedule Out;
  std::string Error;
  EXPECT_FALSE(parseSchedule("not a schedule\n", Out, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ScheduleFile, RejectsStepMismatch) {
  RecordedSchedule Out;
  std::string Error;
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps 5\n0*3\n", Out, Error));
  EXPECT_NE(Error.find("3"), std::string::npos);
}

TEST(ScheduleFile, RejectsMalformedToken) {
  RecordedSchedule Out;
  std::string Error;
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps 1\nx\n", Out, Error));
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps 2\n0*zz\n", Out, Error));
}

// Every parse failure names its cause; one test per diagnostic so the
// hardened paths (overflow, signs, trailing garbage, truncated files)
// cannot silently regress to an accept.
TEST(ScheduleFile, RejectsTruncatedFiles) {
  RecordedSchedule Out;
  std::string Error;
  EXPECT_FALSE(parseSchedule("", Out, Error));
  EXPECT_NE(Error.find("header"), std::string::npos);
  EXPECT_FALSE(parseSchedule("svd-schedule v1\n", Out, Error));
  EXPECT_NE(Error.find("rndseed"), std::string::npos);
  EXPECT_FALSE(parseSchedule("svd-schedule v1\nrndseed 1\n", Out, Error));
  EXPECT_NE(Error.find("steps"), std::string::npos);
}

TEST(ScheduleFile, RejectsHugeDeclaredStepCount) {
  RecordedSchedule Out;
  std::string Error;
  // A negative count scanned through %zu wraps to an enormous value;
  // the declared-count bound must catch it before any allocation.
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps 18446744073709551615\n", Out,
      Error));
  EXPECT_NE(Error.find("exceeds limit"), std::string::npos);
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps -1\n", Out, Error));
}

TEST(ScheduleFile, RejectsSignedAndGarbageTokens) {
  RecordedSchedule Out;
  std::string Error;
  // Signs must not wrap into huge thread ids via strtoull.
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps 1\n-1\n", Out, Error));
  EXPECT_NE(Error.find("malformed token"), std::string::npos);
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps 1\n+2\n", Out, Error));
  EXPECT_NE(Error.find("malformed token"), std::string::npos);
  // Trailing garbage after the thread id.
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps 1\n0zz\n", Out, Error));
  EXPECT_NE(Error.find("malformed token"), std::string::npos);
  // Garbage between the digits and the '*'.
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps 2\n0x*2\n", Out, Error));
  EXPECT_NE(Error.find("malformed token"), std::string::npos);
}

TEST(ScheduleFile, RejectsThreadIdOverflow) {
  RecordedSchedule Out;
  std::string Error;
  // Above UINT32_MAX: must not truncate into a valid-looking id.
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps 1\n4294967296\n", Out, Error));
  EXPECT_NE(Error.find("thread id out of range"), std::string::npos);
  // Above UINT64_MAX: strtoull saturates and sets ERANGE.
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps 1\n99999999999999999999\n", Out,
      Error));
  EXPECT_NE(Error.find("thread id out of range"), std::string::npos);
}

TEST(ScheduleFile, RejectsMalformedRunLengths) {
  RecordedSchedule Out;
  std::string Error;
  // Empty, signed, zero, garbage-suffixed, and overflowing run lengths.
  for (const char *Body :
       {"0*\n", "0*-2\n", "0*+2\n", "0*0\n", "0*2z\n",
        "0*99999999999999999999\n"}) {
    std::string Text = "svd-schedule v1\nrndseed 1\nsteps 4\n";
    Text += Body;
    EXPECT_FALSE(parseSchedule(Text, Out, Error)) << Body;
    EXPECT_NE(Error.find("malformed run length"), std::string::npos)
        << Body << " -> " << Error;
  }
}

TEST(ScheduleFile, RejectsRunLengthPastDeclaredCount) {
  RecordedSchedule Out;
  std::string Error;
  // A hostile run length must be rejected by comparison against the
  // declared count *before* any insertion drives a giant allocation.
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps 4\n0*999999999999\n", Out,
      Error));
  EXPECT_NE(Error.find("longer than declared"), std::string::npos);
  EXPECT_TRUE(Out.Schedule.empty());
}

TEST(ScheduleFile, RejectsTrailingGarbageTokens) {
  RecordedSchedule Out;
  std::string Error;
  EXPECT_FALSE(parseSchedule(
      "svd-schedule v1\nrndseed 1\nsteps 2\n0 1 trailing\n", Out, Error));
  EXPECT_NE(Error.find("malformed token"), std::string::npos);
}

TEST(ScheduleFile, SaveLoadRoundTripsThroughDisk) {
  RecordedSchedule R;
  R.RndSeed = 99;
  R.Schedule = {1, 1, 0, 2, 2, 2};
  std::string Path = testing::TempDir() + "/svd_sched_test.txt";
  ASSERT_TRUE(saveSchedule(Path, R));
  RecordedSchedule Out;
  std::string Error;
  ASSERT_TRUE(loadSchedule(Path, Out, Error)) << Error;
  EXPECT_EQ(Out.RndSeed, R.RndSeed);
  EXPECT_EQ(Out.Schedule, R.Schedule);
  std::remove(Path.c_str());
}

TEST(ScheduleFile, LoadReportsMissingFile) {
  RecordedSchedule Out;
  std::string Error;
  EXPECT_FALSE(loadSchedule("/nonexistent/path/schedule.txt", Out, Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos);
}

TEST(ScheduleFile, RecordedRunReplaysIdentically) {
  // End-to-end: record a contended run's schedule, serialize, parse,
  // replay — the executions must match bit-for-bit.
  isa::Program P = isa::assembleOrDie(R"(
.global x
.lock m
.thread t x3
  li r5, 15
loop:
  lock @m
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  unlock @m
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  vm::MachineConfig MC;
  MC.SchedSeed = 31;
  vm::Machine Original(P, MC);
  Original.run();

  RecordedSchedule R;
  R.RndSeed = MC.RndSeed;
  R.Schedule = Original.schedule();
  RecordedSchedule Parsed;
  std::string Error;
  ASSERT_TRUE(parseSchedule(serializeSchedule(R), Parsed, Error)) << Error;

  vm::MachineConfig MC2;
  MC2.SchedSeed = 777; // irrelevant under replay
  MC2.RndSeed = Parsed.RndSeed;
  vm::Machine Replayed(P, MC2);
  Replayed.setReplaySchedule(Parsed.Schedule);
  Replayed.run();
  EXPECT_EQ(Replayed.steps(), Original.steps());
  EXPECT_EQ(Replayed.readMem(P.addressOf("x")),
            Original.readMem(P.addressOf("x")));
}
