//===- tests/ServeTest.cpp - Streaming daemon robustness tests ------------===//
//
// End-to-end tests of the serve pipeline (serve/Serve.h) against its
// four contracts: hardened ingestion (malformed frames poison, never
// abort), backpressure with never-silent shedding, shard crash
// containment with budgeted re-admission, and deterministic mode —
// fault-free sessions match the batch pipeline byte-for-byte and the
// whole report is invariant under --jobs and shard shuffling.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "obs/Obs.h"
#include "serve/Serve.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::serve;
using workloads::Workload;
using workloads::WorkloadParams;

namespace {

/// A small known-bug workload: fast enough for a unit test, racy
/// enough that detection produces a non-trivial signature to compare.
Workload testWorkload() {
  WorkloadParams P;
  P.Threads = 3;
  P.Iterations = 12;
  P.WorkPadding = 5;
  P.TouchOneIn = 1;
  return workloads::apacheLog(P);
}

/// Builds one session per seed, deriving the machine configuration the
/// same way every other execution path does (harness::machineConfigFor
/// — THE seed derivation).
std::vector<SessionInput> makeSessions(const Workload &W,
                                       std::initializer_list<uint64_t> Seeds) {
  std::vector<SessionInput> Sessions;
  uint32_t Id = 0;
  for (uint64_t Seed : Seeds) {
    SessionInput S;
    S.SessionId = Id++;
    S.Work = &W;
    S.Seed = Seed;
    harness::SampleConfig SC;
    SC.Seed = Seed;
    S.Machine = harness::machineConfigFor(SC);
    Sessions.push_back(S);
  }
  return Sessions;
}

/// Field-by-field equality of two session rows — the deterministic-mode
/// invariance comparisons need full rows, not just signatures.
void expectSameSession(const SessionReport &A, const SessionReport &B) {
  EXPECT_EQ(A.SessionId, B.SessionId);
  EXPECT_EQ(A.Outcome, B.Outcome) << "session " << A.SessionId;
  EXPECT_EQ(A.Diagnostic, B.Diagnostic) << "session " << A.SessionId;
  EXPECT_EQ(A.EventsStreamed, B.EventsStreamed);
  EXPECT_EQ(A.FramesSent, B.FramesSent);
  EXPECT_EQ(A.FramesDelivered, B.FramesDelivered);
  EXPECT_EQ(A.FramesRejected, B.FramesRejected);
  EXPECT_EQ(A.FramesDuplicated, B.FramesDuplicated);
  EXPECT_EQ(A.FramesReordered, B.FramesReordered);
  EXPECT_EQ(A.FramesLost, B.FramesLost);
  EXPECT_EQ(A.FramesShed, B.FramesShed);
  EXPECT_EQ(A.EventsIngested, B.EventsIngested);
  EXPECT_EQ(A.EventsShed, B.EventsShed);
  EXPECT_EQ(A.EventsBudgetDropped, B.EventsBudgetDropped);
  EXPECT_EQ(A.Rejects, B.Rejects);
  EXPECT_EQ(A.detectionSignature(), B.detectionSignature())
      << "session " << A.SessionId;
}

} // namespace

//===----------------------------------------------------------------------===//
// Deterministic mode: fault-free parity with the batch pipeline and
// with runSample, invariance under jobs and shard shuffling.
//===----------------------------------------------------------------------===//

TEST(Serve, FaultFreeSessionsAreOkAndMatchBatch) {
  Workload W = testWorkload();
  std::vector<SessionInput> Sessions = makeSessions(W, {1, 2, 3});
  ServeConfig Cfg;
  ServeReport Rep = runServe(Sessions, Cfg);

  ASSERT_EQ(Rep.Sessions.size(), 3u);
  for (size_t I = 0; I < Rep.Sessions.size(); ++I) {
    const SessionReport &S = Rep.Sessions[I];
    EXPECT_EQ(S.Outcome, SessionOutcome::Ok) << S.Diagnostic;
    EXPECT_TRUE(S.Diagnostic.empty()) << S.Diagnostic;
    EXPECT_EQ(S.FramesLost, 0u);
    EXPECT_EQ(S.EventsIngested, S.EventsStreamed);
    EXPECT_GT(S.FramesDelivered, 0u);
    // The tentpole parity invariant: a fault-free streamed session and
    // the frame-less batch pipeline produce byte-identical detection.
    SessionReport Batch = batchSessionReport(Sessions[I], Cfg);
    EXPECT_EQ(S.detectionSignature(), Batch.detectionSignature());
    // Fault-free ingestion loses nothing — shedding needs overload.
    EXPECT_EQ(S.EventsShed, 0u);
  }
  // Every session appears in exactly one shard.
  size_t Assigned = 0;
  for (const ShardReport &Sh : Rep.Shards)
    Assigned += Sh.Sessions.size();
  EXPECT_EQ(Assigned, Sessions.size());
}

TEST(Serve, BatchTwinMatchesRunSampleOffline) {
  // The batch twin is itself differentially pinned against the harness
  // sample runner under the offline detector: same seed derivation,
  // same trace, same detection passes.
  Workload W = testWorkload();
  for (uint64_t Seed : {1ull, 5ull}) {
    std::vector<SessionInput> Sessions = makeSessions(W, {Seed});
    ServeConfig Cfg;
    SessionReport B = batchSessionReport(Sessions[0], Cfg);

    harness::SampleConfig SC;
    SC.Seed = Seed;
    harness::SampleMetrics M = harness::runSample(W, "offline", SC);
    EXPECT_EQ(B.Steps, M.Steps) << "seed " << Seed;
    EXPECT_EQ(B.Manifested, M.Manifested) << "seed " << Seed;
    EXPECT_EQ(B.DetectedBug, M.DetectedBug) << "seed " << Seed;
    EXPECT_EQ(B.DynamicReports, M.DynamicReports) << "seed " << Seed;
    EXPECT_EQ(B.DynamicTrue, M.DynamicTrue) << "seed " << Seed;
    EXPECT_EQ(B.DynamicFalse, M.DynamicFalse) << "seed " << Seed;
    EXPECT_EQ(B.StaticReports, M.StaticReports) << "seed " << Seed;
    EXPECT_EQ(B.StaticTrueKeys, M.StaticTrueKeys) << "seed " << Seed;
    EXPECT_EQ(B.StaticFalseKeys, M.StaticFalseKeys) << "seed " << Seed;
  }
}

TEST(Serve, ReportInvariantUnderJobsAndShuffle) {
  Workload W = testWorkload();
  std::vector<SessionInput> Sessions = makeSessions(W, {1, 2, 3, 4});
  // Run under the combined mangle plan so the invariance claim covers
  // the interesting (faulted, multi-outcome) paths, not just Ok rows.
  std::vector<fault::FaultPlanConfig> Plans = ingestionPlanMatrix();
  const fault::FaultPlanConfig &Mangle = Plans.back();
  ASSERT_EQ(Mangle.Name, "frame-mangle");

  ServeConfig Base;
  Base.Shards = 2;
  Base.FaultCfg = &Mangle;

  ServeConfig MoreJobs = Base;
  MoreJobs.Jobs = 4;
  ServeConfig Shuffled = Base;
  Shuffled.ShuffleSeed = 987654321;
  ServeConfig MoreShards = Base;
  MoreShards.Shards = 3;

  ServeReport R0 = runServe(Sessions, Base);
  for (const ServeReport &R :
       {runServe(Sessions, MoreJobs), runServe(Sessions, Shuffled),
        runServe(Sessions, MoreShards)}) {
    ASSERT_EQ(R.Sessions.size(), R0.Sessions.size());
    for (size_t I = 0; I < R.Sessions.size(); ++I)
      expectSameSession(R0.Sessions[I], R.Sessions[I]);
  }
}

//===----------------------------------------------------------------------===//
// Hardened ingestion: wire damage poisons the session, replay noise
// heals, and the process always survives with a classified report.
//===----------------------------------------------------------------------===//

TEST(Serve, CorruptFramesPoisonSessionsNotTheProcess) {
  Workload W = testWorkload();
  std::vector<SessionInput> Sessions = makeSessions(W, {1, 2, 3});
  std::vector<fault::FaultPlanConfig> Plans = ingestionPlanMatrix();
  ASSERT_EQ(Plans[1].Name, "frame-corrupt");
  ServeConfig Cfg;
  Cfg.FaultCfg = &Plans[1];

  ServeReport Rep = runServe(Sessions, Cfg);
  ASSERT_EQ(Rep.Sessions.size(), 3u);
  size_t Poisoned = 0;
  for (const SessionReport &S : Rep.Sessions) {
    // Every outcome is classified — there is no unclassified exit.
    EXPECT_NE(sessionOutcomeName(S.Outcome), std::string("unknown"));
    if (S.Outcome == SessionOutcome::Poisoned) {
      ++Poisoned;
      EXPECT_FALSE(S.Diagnostic.empty());
      uint64_t TotalRejects = 0;
      for (uint64_t C : S.Rejects)
        TotalRejects += C;
      EXPECT_GT(TotalRejects, 0u);
      EXPECT_EQ(S.FramesRejected, TotalRejects);
    }
  }
  // At rate 500/10k over hundreds of frames, corruption always lands.
  EXPECT_GT(Poisoned, 0u);
}

TEST(Serve, DuplicateAndReorderDeliveriesHealToOk) {
  Workload W = testWorkload();
  std::vector<SessionInput> Sessions = makeSessions(W, {1, 2});
  std::vector<fault::FaultPlanConfig> Plans = ingestionPlanMatrix();
  ASSERT_EQ(Plans[3].Name, "frame-duplicate");
  ASSERT_EQ(Plans[4].Name, "frame-reorder");

  for (size_t PlanIdx : {3u, 4u}) {
    ServeConfig Cfg;
    Cfg.FaultCfg = &Plans[PlanIdx];
    ServeReport Rep = runServe(Sessions, Cfg);
    bool AnyHealed = false;
    for (size_t I = 0; I < Rep.Sessions.size(); ++I) {
      const SessionReport &S = Rep.Sessions[I];
      // Duplicates and adjacent reorders are wire noise the
      // resequencer absorbs: the session still ends Ok and its
      // detection matches the batch pipeline exactly.
      EXPECT_EQ(S.Outcome, SessionOutcome::Ok)
          << Plans[PlanIdx].Name << ": " << S.Diagnostic;
      EXPECT_EQ(S.detectionSignature(),
                batchSessionReport(Sessions[I], Cfg).detectionSignature());
      AnyHealed |= S.FramesDuplicated > 0 || S.FramesReordered > 0;
    }
    EXPECT_TRUE(AnyHealed) << Plans[PlanIdx].Name
                           << " plan never perturbed the wire";
  }
}

//===----------------------------------------------------------------------===//
// Backpressure and load shedding: overload sheds behind explicit
// markers and degrades the session — never silently.
//===----------------------------------------------------------------------===//

TEST(Serve, SustainedStallShedsExplicitlyNeverSilently) {
  Workload W = testWorkload();
  std::vector<SessionInput> Sessions = makeSessions(W, {1, 2});
  fault::FaultPlanConfig Stall;
  Stall.Name = "stall-hard";
  Stall.PlanSeed = 0x57a11;
  Stall.FrameStallRatePerMyriad = 6000;
  Stall.FrameStallTicks = 16;

  ServeConfig Cfg;
  Cfg.RingCapacity = 2;
  Cfg.PushPerTick = 4;
  Cfg.ShedAfterBackoffs = 2;
  Cfg.FaultCfg = &Stall;

  ServeReport Rep = runServe(Sessions, Cfg);
  size_t ShedSessions = 0;
  for (const SessionReport &S : Rep.Sessions) {
    EXPECT_GT(S.StallTicks, 0u);
    if (S.EventsShed > 0) {
      ++ShedSessions;
      // Shed loss is never silent: an explicit marker crossed the
      // wire, the outcome says Shed, and the diagnostic says why.
      EXPECT_GT(S.FramesShed, 0u);
      EXPECT_EQ(S.Outcome, SessionOutcome::Shed);
      EXPECT_NE(S.Diagnostic.find("shed"), std::string::npos)
          << S.Diagnostic;
      // Accounting closes: every streamed event was either ingested
      // or declared shed.
      EXPECT_EQ(S.EventsIngested + S.EventsShed, S.EventsStreamed);
    }
  }
  EXPECT_GT(ShedSessions, 0u);
}

TEST(Serve, TenantBudgetDegradesStickyAndMatchesBatch) {
  Workload W = testWorkload();
  std::vector<SessionInput> Sessions = makeSessions(W, {1});
  ServeConfig Cfg;
  Cfg.TenantEventBudget = 500;

  ServeReport Rep = runServe(Sessions, Cfg);
  ASSERT_EQ(Rep.Sessions.size(), 1u);
  const SessionReport &S = Rep.Sessions[0];
  EXPECT_EQ(S.Outcome, SessionOutcome::Degraded) << S.Diagnostic;
  // Ingestion counts the full delivered stream; the budget cap is
  // accounted separately, never silently.
  EXPECT_EQ(S.EventsBudgetDropped, S.EventsStreamed - 500);
  EXPECT_NE(S.Diagnostic.find("tenant budget"), std::string::npos)
      << S.Diagnostic;
  // Budgeted parity: the batch twin caps its trace the same way, so
  // even the degraded signature is byte-identical.
  EXPECT_EQ(S.detectionSignature(),
            batchSessionReport(Sessions[0], Cfg).detectionSignature());
}

//===----------------------------------------------------------------------===//
// Crash containment: quarantine, budgeted re-admission, escalation to
// Failed — and the tick watchdog as the livelock valve.
//===----------------------------------------------------------------------===//

TEST(Serve, ShardCrashQuarantinesAndRecovers) {
  Workload W = testWorkload();
  std::vector<SessionInput> Sessions = makeSessions(W, {1, 2, 3, 4, 5, 6});
  // The matrix preset's rate is tuned for the long bench sessions;
  // these test sessions span only ~a dozen frames each, so a hotter
  // plan is needed for crashes (and recoveries) to land.
  fault::FaultPlanConfig Crash;
  Crash.Name = "crash-some";
  Crash.PlanSeed = 0x5e46;
  Crash.ShardCrashRatePerMyriad = 800;
  ServeConfig Cfg;
  Cfg.FaultCfg = &Crash;

  ServeReport Rep = runServe(Sessions, Cfg);
  size_t Quarantined = 0, Recovered = 0;
  for (size_t I = 0; I < Rep.Sessions.size(); ++I) {
    const SessionReport &S = Rep.Sessions[I];
    if (S.Quarantines == 0) {
      EXPECT_EQ(S.Outcome, SessionOutcome::Ok) << S.Diagnostic;
      continue;
    }
    ++Quarantined;
    if (S.Outcome == SessionOutcome::Failed) {
      EXPECT_EQ(S.Readmissions, Cfg.RetryBudget);
      EXPECT_FALSE(S.Diagnostic.empty());
      continue;
    }
    ++Recovered;
    // A recovered session re-ingested the stream from frame zero:
    // counters must reflect the final attempt only (no double
    // booking), so the end-marker accounting still closes and the
    // detection content matches the batch pipeline. (The signature
    // itself differs by design — recovery marks the session degraded
    // with the quarantine note, which the frame-less batch twin never
    // carries.)
    EXPECT_EQ(S.Outcome, SessionOutcome::Degraded) << S.Diagnostic;
    EXPECT_NE(S.Diagnostic.find("recovered from"), std::string::npos)
        << S.Diagnostic;
    EXPECT_EQ(S.EventsIngested, S.EventsStreamed);
    SessionReport B = batchSessionReport(Sessions[I], Cfg);
    EXPECT_EQ(S.Steps, B.Steps);
    EXPECT_EQ(S.DynamicReports, B.DynamicReports);
    EXPECT_EQ(S.DynamicTrue, B.DynamicTrue);
    EXPECT_EQ(S.CusFormed, B.CusFormed);
    EXPECT_EQ(S.StaticTrueKeys, B.StaticTrueKeys);
    EXPECT_EQ(S.StaticFalseKeys, B.StaticFalseKeys);
  }
  EXPECT_GT(Quarantined, 0u);
  EXPECT_GT(Recovered, 0u);
}

TEST(Serve, ExhaustedRetryBudgetFailsTheSessionOnly) {
  Workload W = testWorkload();
  std::vector<SessionInput> Sessions = makeSessions(W, {1, 2});
  fault::FaultPlanConfig AlwaysCrash;
  AlwaysCrash.Name = "crash-always";
  AlwaysCrash.PlanSeed = 0xdead;
  AlwaysCrash.ShardCrashRatePerMyriad = 10000;

  ServeConfig Cfg;
  Cfg.RetryBudget = 2;
  Cfg.FaultCfg = &AlwaysCrash;

  // The contract under test: runServe never throws, it classifies.
  ServeReport Rep = runServe(Sessions, Cfg);
  ASSERT_EQ(Rep.Sessions.size(), 2u);
  for (const SessionReport &S : Rep.Sessions) {
    EXPECT_EQ(S.Outcome, SessionOutcome::Failed);
    EXPECT_EQ(S.Quarantines, Cfg.RetryBudget + 1);
    EXPECT_EQ(S.Readmissions, Cfg.RetryBudget);
    EXPECT_FALSE(S.Diagnostic.empty());
  }
}

TEST(Serve, WatchdogTripsLivelockedSessions) {
  Workload W = testWorkload();
  std::vector<SessionInput> Sessions = makeSessions(W, {1});
  ServeConfig Cfg;
  Cfg.SessionTickDeadline = 8; // far below any real session's ticks

  ServeReport Rep = runServe(Sessions, Cfg);
  ASSERT_EQ(Rep.Sessions.size(), 1u);
  const SessionReport &S = Rep.Sessions[0];
  // Every attempt trips the watchdog, so the retry budget drains and
  // the session fails — without hanging and without taking down the
  // daemon.
  EXPECT_EQ(S.Outcome, SessionOutcome::Failed);
  EXPECT_GT(S.Quarantines, 0u);
  EXPECT_FALSE(S.Diagnostic.empty());
}

//===----------------------------------------------------------------------===//
// Observability: every exported key is schema-documented and the
// metrics document stays valid.
//===----------------------------------------------------------------------===//

TEST(Serve, ExportsOnlyDocumentedKeys) {
  Workload W = testWorkload();
  std::vector<SessionInput> Sessions = makeSessions(W, {1, 2});
  std::vector<fault::FaultPlanConfig> Plans = ingestionPlanMatrix();
  obs::Registry Reg;
  ServeConfig Cfg;
  Cfg.FaultCfg = &Plans.back(); // frame-mangle: touches every counter class
  Cfg.Obs = &Reg;
  runServe(Sessions, Cfg);

  bool SawServe = false, SawReject = false, SawShardShadow = false;
  for (const auto &[Name, Value] : Reg.counters()) {
    EXPECT_TRUE(obs::isDocumentedKey(Name)) << Name;
    SawServe |= Name == "serve.sessions";
    SawReject |= Name.rfind("serve.rejects.", 0) == 0;
    SawShardShadow |= Name == "shadow.shard0.bytes";
    (void)Value;
  }
  EXPECT_TRUE(SawServe);
  EXPECT_TRUE(SawReject);
  EXPECT_TRUE(SawShardShadow);
  EXPECT_EQ(Reg.counter("serve.sessions").value(), Sessions.size());

  // The rendered document is still the svd-metrics-v1 shape.
  std::string J = obs::metricsJson(Reg);
  EXPECT_NE(J.find("\"schema\": \"svd-metrics-v1\""), std::string::npos);
  EXPECT_NE(J.find("\"serve.frames_delivered\""), std::string::npos);
}
