//===- tests/StaticCuTest.cpp - Static CU inference tests -----------------===//

#include "analysis/StaticCu.h"
#include "isa/Assembler.h"
#include "isa/Cfg.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::analysis;
using isa::Program;

namespace {

/// Thread-0 pass stack with every access treated as possibly shared
/// (the partition mechanics under test are orthogonal to the escape
/// filter, which PredictTest exercises through the full pipeline).
struct CuHarness {
  Program P;
  isa::ThreadCfg Cfg;
  EscapeAnalysis EA;
  StaticCuInference CU;

  explicit CuHarness(const std::string &Src)
      : P(isa::assembleOrDie(Src)), Cfg(P.Threads[0].Code),
        EA(Cfg, P.Threads[0].Code, 0),
        CU(Cfg, P.Threads[0].Code, EA, [](uint32_t) { return true; }) {}
};

} // namespace

TEST(StaticCu, ReadModifyWriteFormsOneUnit) {
  CuHarness H(R"(
.global x
.thread t
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  halt
)");
  ASSERT_EQ(H.CU.units().size(), 1u);
  const StaticCu &U = H.CU.units()[0];
  EXPECT_EQ(U.Pcs, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(U.SharedReads, (std::vector<uint32_t>{0}));
  EXPECT_EQ(U.SharedWrites, (std::vector<uint32_t>{2}));
  // Halt lives outside every unit, like thread-end events dynamically.
  EXPECT_EQ(H.CU.unitOf(3), StaticCuInference::NoUnit);
}

TEST(StaticCu, IndependentRmwSequencesStayApart) {
  // The second read-modify-write has no dependence edge into the first,
  // so the units stay separate — the static analog of a CU ending
  // between two atomic regions.
  CuHarness H(R"(
.global x
.thread t
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  ld r2, [@x]
  addi r2, r2, 1
  st r2, [@x]
  halt
)");
  ASSERT_EQ(H.CU.units().size(), 2u);
  EXPECT_EQ(H.CU.unitOf(0), H.CU.unitOf(2));
  EXPECT_EQ(H.CU.unitOf(3), H.CU.unitOf(5));
  EXPECT_NE(H.CU.unitOf(0), H.CU.unitOf(3));
}

TEST(StaticCu, ReadBackOfOwnSharedWriteCutsTheUnit) {
  // pc 3's address depends on r2 (defined inside the first unit), and
  // its unbounded bound may alias the unit's recorded shared write — the
  // crossing-arc cut of Definition 2 deactivates the unit instead of
  // growing it.
  CuHarness H(R"(
.global buf 4
.global idx
.thread t
  ld r1, [@idx]
  addi r2, r1, 0
  st r1, [@idx]
  ld r3, [r2+@idx]
  st r3, [@buf]
  halt
)");
  EXPECT_EQ(H.CU.unitOf(0), H.CU.unitOf(2));
  EXPECT_NE(H.CU.unitOf(3), H.CU.unitOf(0));
  EXPECT_EQ(H.CU.unitOf(3), H.CU.unitOf(4));
}

TEST(StaticCu, WithoutTheWriteTheLoadJoinsTheUnit) {
  // Same shape minus the shared write: nothing to read back, so the
  // dependent load merges into its predecessor's unit.
  CuHarness H(R"(
.global buf 4
.global idx
.thread t
  ld r1, [@idx]
  addi r2, r1, 0
  ld r3, [r2+@idx]
  st r3, [@buf]
  halt
)");
  ASSERT_EQ(H.CU.units().size(), 1u);
  EXPECT_EQ(H.CU.unitOf(0), H.CU.unitOf(2));
  EXPECT_EQ(H.CU.unitOf(2), H.CU.unitOf(3));
}

TEST(StaticCu, LockUnlockStayOutsideUnits) {
  CuHarness H(R"(
.global x
.lock m
.thread t
  lock @m
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  unlock @m
  halt
)");
  EXPECT_EQ(H.CU.unitOf(0), StaticCuInference::NoUnit);
  EXPECT_EQ(H.CU.unitOf(4), StaticCuInference::NoUnit);
  EXPECT_EQ(H.CU.unitOf(1), H.CU.unitOf(3));
}

TEST(StaticCu, ControlDependenceGrowsTheUnit) {
  // The guarded store is control-dependent on the branch, which is
  // data-dependent on the load: one read→compute→write unit.
  CuHarness H(R"(
.global x
.global y
.thread t
  ld r1, [@x]
  beqz r1, skip
  li r2, 1
  st r2, [@y]
skip:
  halt
)");
  EXPECT_EQ(H.CU.unitOf(0), H.CU.unitOf(1));
  EXPECT_EQ(H.CU.unitOf(1), H.CU.unitOf(2));
  EXPECT_EQ(H.CU.unitOf(2), H.CU.unitOf(3));
}

TEST(StaticCu, CasIsMemberButNeverEndpoint) {
  CuHarness H(R"(
.global g
.thread t
  li r1, 0
  li r2, 1
  cas r3, r1, r2, [@g]
  st r3, [@g]
  halt
)");
  ASSERT_EQ(H.CU.units().size(), 1u);
  const StaticCu &U = H.CU.units()[0];
  EXPECT_EQ(H.CU.unitOf(2), H.CU.unitOf(3));
  // The atomic RMW cannot be a pattern endpoint: nothing can land
  // between its load and store halves.
  EXPECT_TRUE(U.SharedReads.empty());
  EXPECT_EQ(U.SharedWrites, (std::vector<uint32_t>{3}));
}

TEST(StaticCu, DependsOnAndShareAncestor) {
  CuHarness H(R"(
.global x
.global y
.global z
.thread t
  ld r1, [@x]
  addi r2, r1, 1
  addi r3, r1, 2
  st r2, [@y]
  st r3, [@z]
  halt
)");
  EXPECT_TRUE(H.CU.dependsOn(3, 0));
  EXPECT_TRUE(H.CU.dependsOn(4, 0));
  EXPECT_FALSE(H.CU.dependsOn(3, 4));
  EXPECT_FALSE(H.CU.dependsOn(4, 3));
  // The two stores define no registers, but their value chains meet at
  // the load — the static stand-in for "one dynamic CU".
  EXPECT_TRUE(H.CU.shareAncestor(3, 4));
  EXPECT_FALSE(H.CU.shareAncestor(3, 5));
  EXPECT_GT(H.CU.meanUnitSize(), 0.0);
}
