//===- tests/TraceTest.cpp - Unit tests for trace recording ---------------===//

#include "TestUtil.h"
#include "trace/Trace.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::trace;
using isa::assembleOrDie;
using testutil::recordRun;

TEST(Trace, RecordsAllEventKinds) {
  isa::Program P = assembleOrDie(R"(
.global g
.lock m
.thread t
  li r1, 1
  lock @m
  st r1, [@g]
  ld r2, [@g]
  unlock @m
  beqz r0, end
end:
  halt
)");
  ProgramTrace T = recordRun(P);
  ASSERT_EQ(T.size(), 7u);
  EXPECT_EQ(T[0].Kind, EventKind::Alu);
  EXPECT_EQ(T[1].Kind, EventKind::Lock);
  EXPECT_EQ(T[2].Kind, EventKind::Store);
  EXPECT_EQ(T[3].Kind, EventKind::Load);
  EXPECT_EQ(T[4].Kind, EventKind::Unlock);
  EXPECT_EQ(T[5].Kind, EventKind::Branch);
  EXPECT_EQ(T[6].Kind, EventKind::ThreadEnd);
  EXPECT_TRUE(T[5].Taken);
  EXPECT_EQ(T[2].Address, P.addressOf("g"));
  EXPECT_EQ(T[2].Value, 1);
  EXPECT_EQ(T[3].Value, 1);
}

TEST(Trace, SeqIsMonotonic) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread t x2
  ld r1, [@g]
  addi r1, r1, 1
  st r1, [@g]
  halt
)");
  ProgramTrace T = recordRun(P, 3);
  for (size_t I = 1; I < T.size(); ++I)
    EXPECT_LE(T[I - 1].Seq, T[I].Seq);
}

TEST(Trace, ThreadViewsPartitionTheTrace) {
  isa::Program P = assembleOrDie(R"(
.thread t x3
  li r1, 1
  li r2, 2
  halt
)");
  ProgramTrace T = recordRun(P, 7);
  size_t Total = 0;
  for (uint32_t Tid = 0; Tid < T.numThreads(); ++Tid) {
    const auto &TE = T.threadEvents(Tid);
    Total += TE.size();
    for (uint32_t E : TE)
      EXPECT_EQ(T[E].Tid, Tid);
    // Each thread executed li, li, halt.
    EXPECT_EQ(TE.size(), 3u);
  }
  EXPECT_EQ(Total, T.size());
}

TEST(Trace, SharedAddressOracle) {
  isa::Program P = assembleOrDie(R"(
.global shared_g
.global private_g
.local priv
.thread a
  ld r1, [@shared_g]
  ld r2, [@private_g]
  st r1, [@priv]
  halt
.thread b
  li r3, 5
  st r3, [@shared_g]
  st r3, [@priv]
  halt
)");
  ProgramTrace T = recordRun(P);
  EXPECT_TRUE(T.isSharedAddress(P.addressOf("shared_g")));
  EXPECT_FALSE(T.isSharedAddress(P.addressOf("private_g")));
  // Thread-local symbols resolve to distinct words per thread.
  EXPECT_FALSE(T.isSharedAddress(P.addressOf("priv", 0)));
  EXPECT_FALSE(T.isSharedAddress(P.addressOf("priv", 1)));
}

TEST(Trace, SharedOracleCountsRepeatedSameThreadAsOne) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread t
  ld r1, [@g]
  ld r1, [@g]
  st r1, [@g]
  halt
)");
  ProgramTrace T = recordRun(P);
  EXPECT_EQ(T.threadsAccessing(P.addressOf("g")), 1u);
  EXPECT_FALSE(T.isSharedAddress(P.addressOf("g")));
}

TEST(Trace, InstrPointersMatchProgram) {
  isa::Program P = assembleOrDie(R"(
.thread t
  li r1, 42
  halt
)");
  ProgramTrace T = recordRun(P);
  ASSERT_GE(T.size(), 1u);
  EXPECT_EQ(T[0].Instr, &P.Threads[0].Code[0]);
  EXPECT_EQ(T[0].Pc, 0u);
}
