//===- tests/TraceTest.cpp - Unit tests for trace recording ---------------===//

#include "TestUtil.h"
#include "trace/Trace.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::trace;
using isa::assembleOrDie;
using testutil::recordRun;

TEST(Trace, RecordsAllEventKinds) {
  isa::Program P = assembleOrDie(R"(
.global g
.lock m
.thread t
  li r1, 1
  lock @m
  st r1, [@g]
  ld r2, [@g]
  unlock @m
  beqz r0, end
end:
  halt
)");
  ProgramTrace T = recordRun(P);
  ASSERT_EQ(T.size(), 7u);
  EXPECT_EQ(T[0].Kind, EventKind::Alu);
  EXPECT_EQ(T[1].Kind, EventKind::Lock);
  EXPECT_EQ(T[2].Kind, EventKind::Store);
  EXPECT_EQ(T[3].Kind, EventKind::Load);
  EXPECT_EQ(T[4].Kind, EventKind::Unlock);
  EXPECT_EQ(T[5].Kind, EventKind::Branch);
  EXPECT_EQ(T[6].Kind, EventKind::ThreadEnd);
  EXPECT_TRUE(T[5].Taken);
  EXPECT_EQ(T[2].Address, P.addressOf("g"));
  EXPECT_EQ(T[2].Value, 1);
  EXPECT_EQ(T[3].Value, 1);
}

TEST(Trace, SeqIsMonotonic) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread t x2
  ld r1, [@g]
  addi r1, r1, 1
  st r1, [@g]
  halt
)");
  ProgramTrace T = recordRun(P, 3);
  for (size_t I = 1; I < T.size(); ++I)
    EXPECT_LE(T[I - 1].Seq, T[I].Seq);
}

TEST(Trace, ThreadViewsPartitionTheTrace) {
  isa::Program P = assembleOrDie(R"(
.thread t x3
  li r1, 1
  li r2, 2
  halt
)");
  ProgramTrace T = recordRun(P, 7);
  size_t Total = 0;
  for (uint32_t Tid = 0; Tid < T.numThreads(); ++Tid) {
    const auto &TE = T.threadEvents(Tid);
    Total += TE.size();
    for (uint32_t E : TE)
      EXPECT_EQ(T[E].Tid, Tid);
    // Each thread executed li, li, halt.
    EXPECT_EQ(TE.size(), 3u);
  }
  EXPECT_EQ(Total, T.size());
}

TEST(Trace, SharedAddressOracle) {
  isa::Program P = assembleOrDie(R"(
.global shared_g
.global private_g
.local priv
.thread a
  ld r1, [@shared_g]
  ld r2, [@private_g]
  st r1, [@priv]
  halt
.thread b
  li r3, 5
  st r3, [@shared_g]
  st r3, [@priv]
  halt
)");
  ProgramTrace T = recordRun(P);
  EXPECT_TRUE(T.isSharedAddress(P.addressOf("shared_g")));
  EXPECT_FALSE(T.isSharedAddress(P.addressOf("private_g")));
  // Thread-local symbols resolve to distinct words per thread.
  EXPECT_FALSE(T.isSharedAddress(P.addressOf("priv", 0)));
  EXPECT_FALSE(T.isSharedAddress(P.addressOf("priv", 1)));
}

TEST(Trace, SharedOracleCountsRepeatedSameThreadAsOne) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread t
  ld r1, [@g]
  ld r1, [@g]
  st r1, [@g]
  halt
)");
  ProgramTrace T = recordRun(P);
  EXPECT_EQ(T.threadsAccessing(P.addressOf("g")), 1u);
  EXPECT_FALSE(T.isSharedAddress(P.addressOf("g")));
}

TEST(Trace, ValidateAcceptsRecordedTraces) {
  isa::Program P = assembleOrDie(R"(
.global g
.lock m
.thread t x2
  lock @m
  ld r1, [@g]
  addi r1, r1, 1
  st r1, [@g]
  unlock @m
  halt
)");
  ProgramTrace T = recordRun(P, 5);
  std::string Err;
  EXPECT_TRUE(validate(T, Err)) << Err;
  EXPECT_TRUE(Err.empty());
}

TEST(Trace, ValidateNamesEveryCorruptionKind) {
  isa::Program P = assembleOrDie(R"(
.global g
.lock m
.thread t
  ld r1, [@g]
  st r1, [@g]
  halt
)");
  ProgramTrace Clean = recordRun(P);
  ASSERT_GE(Clean.size(), 3u);

  // Rebuild the trace with exactly one field mangled per case; the
  // diagnostic must name the offending event and cause.
  struct Case {
    const char *Expect;
    void (*Mangle)(TraceEvent &);
  };
  const Case Cases[] = {
      {"thread id", [](TraceEvent &E) { E.Tid = 99; }},
      {"breaks execution order", [](TraceEvent &E) { E.Seq = 0; }},
      {"null instruction", [](TraceEvent &E) { E.Instr = nullptr; }},
      {"address",
       [](TraceEvent &E) {
         E.Kind = EventKind::Store;
         E.Address = 1u << 30;
       }},
      {"mutex id",
       [](TraceEvent &E) {
         E.Kind = EventKind::Lock;
         E.MutexId = 77;
       }},
  };
  for (const Case &C : Cases) {
    ProgramTrace Bad(P);
    for (size_t I = 0; I < Clean.size(); ++I) {
      TraceEvent E = Clean[I];
      if (I == 2)
        C.Mangle(E);
      Bad.appendUnchecked(E);
    }
    std::string Err;
    EXPECT_FALSE(validate(Bad, Err)) << C.Expect;
    EXPECT_NE(Err.find(C.Expect), std::string::npos) << Err;
    EXPECT_NE(Err.find("event 2"), std::string::npos) << Err;
  }
}

TEST(Trace, RecorderCapLeavesValidPrefix) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread t x2
  ld r1, [@g]
  addi r1, r1, 1
  st r1, [@g]
  halt
)");
  // Uncapped run for the reference event count.
  ProgramTrace Full = recordRun(P, 9);
  ASSERT_GT(Full.size(), 4u);

  vm::MachineConfig Cfg;
  Cfg.SchedSeed = 9;
  vm::Machine M(P, Cfg);
  TraceRecorder R(P);
  R.setMaxEvents(4);
  M.addObserver(&R);
  M.run();
  EXPECT_EQ(R.trace().size(), 4u);
  EXPECT_EQ(R.droppedEvents(), Full.size() - 4);
  // The capped prefix is still structurally valid.
  std::string Err;
  EXPECT_TRUE(validate(R.trace(), Err)) << Err;
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(R.trace()[I].Seq, Full[I].Seq);
}

TEST(Trace, InstrPointersMatchProgram) {
  isa::Program P = assembleOrDie(R"(
.thread t
  li r1, 42
  halt
)");
  ProgramTrace T = recordRun(P);
  ASSERT_GE(T.size(), 1u);
  EXPECT_EQ(T[0].Instr, &P.Threads[0].Code[0]);
  EXPECT_EQ(T[0].Pc, 0u);
}
