//===- tests/ValueFlowTest.cpp - Affine SCCP value-flow tests -------------===//
//
// The reduced-product contract of analysis/ValueFlow.h: every sharpened
// bound is a subset of the plain per-thread interval analysis, the
// access classification only ever improves when value flow is enabled,
// SCCP kills constant-false branches, and Tid-strided slab addressing
// stays exact where a plain interval hull would lose the per-thread
// structure.
//
//===----------------------------------------------------------------------===//

#include "analysis/AccessTable.h"
#include "analysis/ValueFlow.h"
#include "isa/Assembler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::analysis;
using isa::Program;

namespace {

Program asmProg(const std::string &Src) { return isa::assembleOrDie(Src); }

/// A is a subset of B (empty is a subset of everything).
bool subsetOf(const Interval &A, const Interval &B) {
  return A.empty() || (!B.empty() && A.Lo >= B.Lo && A.Hi <= B.Hi);
}

/// A diverse program population for the property tests: the paper
/// workloads at small sizes, the prove-and-prune showcases, and a
/// handful of seeded random programs (with and without injected bugs).
std::vector<Program> propertyPrograms() {
  std::vector<Program> Out;
  workloads::WorkloadParams P;
  P.Threads = 3;
  P.Iterations = 6;
  P.WorkPadding = 4;
  P.TouchOneIn = 2;
  for (workloads::Workload &W : workloads::table1Workloads(P))
    Out.push_back(std::move(W.Program));
  Out.push_back(workloads::lockedCounters(P).Program);
  Out.push_back(workloads::tidSlab(P).Program);
  Out.push_back(workloads::mysqlTableLock(P).Program);
  Out.push_back(workloads::sharedQueue(P).Program);
  for (uint64_t Seed : {1, 2, 3, 4}) {
    workloads::RandomParams R;
    R.Seed = Seed;
    R.Threads = 3;
    R.Iterations = 8;
    R.OmitLockProbability = Seed % 2 ? 0.3 : 0.0;
    Out.push_back(workloads::randomWorkload(R).Program);
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Reduced-product property: never wider than Escape
//===----------------------------------------------------------------------===//

// Every value and address bound ValueFlow reports must lie inside the
// interval EscapeAnalysis reports for the same point — the reduced
// product can only sharpen, never widen. Exhaustive over every (thread,
// pc, register) of the whole program population.
TEST(ValueFlowProperty, NeverWiderThanEscape) {
  for (const Program &P : propertyPrograms()) {
    ValueFlowAnalysis VF(P);
    for (isa::ThreadId Tid = 0; Tid < P.numThreads(); ++Tid) {
      const EscapeAnalysis &E = VF.escape(Tid);
      const std::vector<isa::Instruction> &Code = P.Threads[Tid].Code;
      for (uint32_t Pc = 0; Pc < Code.size(); ++Pc) {
        for (isa::Reg R = 0; R < isa::NumRegs; ++R) {
          Interval Sharp = VF.valueBefore(Tid, Pc, R);
          Interval Wide = E.valueBefore(Pc, R);
          EXPECT_TRUE(subsetOf(Sharp, Wide))
              << "thread " << unsigned(Tid) << " pc " << Pc << " r"
              << unsigned(R) << ": [" << Sharp.Lo << "," << Sharp.Hi
              << "] not within [" << Wide.Lo << "," << Wide.Hi << "]";
        }
        Interval SharpA = VF.addressOf(Tid, Pc);
        Interval WideA = E.addressOf(Pc);
        EXPECT_TRUE(subsetOf(SharpA, WideA))
            << "thread " << unsigned(Tid) << " pc " << Pc << " address";
        // SCCP reachability implies Escape reachability.
        if (VF.reachable(Tid, Pc))
          EXPECT_TRUE(E.reachable(Pc));
      }
    }
  }
}

// Enabling value flow never loses a classification: a site that is
// ThreadLocal under the plain interval table stays ThreadLocal under
// the sharpened one (monotone improvement), and the same holds for
// LockProtected.
TEST(ValueFlowProperty, ClassificationMonotone) {
  for (const Program &P : propertyPrograms()) {
    AccessTableOptions Off;
    Off.UseValueFlow = false;
    AccessTableOptions On;
    On.UseValueFlow = true;
    AccessTable TOff = buildAccessTable(P, Off);
    AccessTable TOn = buildAccessTable(P, On);
    for (isa::ThreadId Tid = 0; Tid < P.numThreads(); ++Tid) {
      const std::vector<isa::Instruction> &Code = P.Threads[Tid].Code;
      for (uint32_t Pc = 0; Pc < Code.size(); ++Pc) {
        if (!isa::isMemoryAccess(Code[Pc].Op))
          continue;
        AccessClass COff = TOff.classify(Tid, Pc);
        AccessClass COn = TOn.classify(Tid, Pc);
        if (COff == AccessClass::ThreadLocal)
          EXPECT_EQ(COn, AccessClass::ThreadLocal)
              << "thread " << unsigned(Tid) << " pc " << Pc
              << " degraded from ThreadLocal";
        if (COff == AccessClass::LockProtected)
          EXPECT_NE(COn, AccessClass::PossiblyShared)
              << "thread " << unsigned(Tid) << " pc " << Pc
              << " degraded from LockProtected to PossiblyShared";
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// SCCP and the affine domain
//===----------------------------------------------------------------------===//

// A branch on a known-zero register has exactly one feasible edge:
// SCCP marks the taken side dead while the plain interval analysis
// (no edge-feasibility hook) still reaches it.
TEST(ValueFlow, SccpKillsConstantFalseBranch) {
  Program P = asmProg(R"(
.global x
.thread t
  li r1, 0
  bnez r1, dead
  li r2, 1
  st r2, [@x]
  halt
dead:
  li r3, 7
  st r3, [@x]
  halt
)");
  ValueFlowAnalysis VF(P);
  // pc 5 = "li r3, 7", pc 6 = the dead store.
  EXPECT_FALSE(VF.reachable(0, 5));
  EXPECT_FALSE(VF.reachable(0, 6));
  EXPECT_TRUE(VF.escape(0).reachable(5));
  // The live side stays live and the stored value is the constant 1.
  EXPECT_TRUE(VF.reachable(0, 3));
  Interval V = VF.valueBefore(0, 3, 2);
  EXPECT_EQ(V.Lo, 1);
  EXPECT_EQ(V.Hi, 1);
}

// The slab address "tid * 8 + rnd(8)" is tracked as the exact affine
// term 8*Tid + [0,7]; concretized per thread the slabs are disjoint.
TEST(ValueFlow, AffineTermTracksTidStride) {
  Program P = asmProg(R"(
.global slab 32
.thread shard x4
  tid r1
  muli r1, r1, 8
  rnd r2, 8
  add r2, r2, r1
  ld r3, [r2+@slab]
  halt
)");
  ValueFlowAnalysis VF(P);
  for (isa::ThreadId Tid = 0; Tid < 4; ++Tid) {
    AffineTerm T = VF.addressTerm(Tid, 4);
    ASSERT_FALSE(T.Top);
    ASSERT_FALSE(T.bottom());
    EXPECT_EQ(T.TidStride, 8);
    EXPECT_EQ(T.Rem.Hi - T.Rem.Lo, 7);
    Interval A = VF.addressOf(Tid, 4);
    EXPECT_EQ(A.Lo, int64_t(Tid) * 8);
    EXPECT_EQ(A.Hi, int64_t(Tid) * 8 + 7);
  }
}

// The tid_slab shape is the case interval analysis alone cannot prove:
// with value flow off every slab access is PossiblyShared (the rnd hull
// spans all slabs once joined across threads); with value flow on the
// per-thread slabs are disjoint and classify ThreadLocal.
TEST(ValueFlow, OnlyValueFlowProvesTidSlabLocal) {
  Program P = asmProg(R"(
.global slab 32
.thread shard x4
  li r5, 4
  tid r1
  muli r1, r1, 8
loop:
  rnd r2, 8
  add r2, r2, r1
  ld r3, [r2+@slab]
  addi r3, r3, 1
  st r3, [r2+@slab]
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  AccessTableOptions Off;
  Off.UseValueFlow = false;
  AccessTableOptions On;
  On.UseValueFlow = true;
  AccessTable TOff = buildAccessTable(P, Off);
  AccessTable TOn = buildAccessTable(P, On);
  for (isa::ThreadId Tid = 0; Tid < 4; ++Tid) {
    // pc 5 = ld, pc 7 = st.
    for (uint32_t Pc : {5u, 7u}) {
      EXPECT_EQ(TOff.classify(Tid, Pc), AccessClass::PossiblyShared);
      EXPECT_EQ(TOn.classify(Tid, Pc), AccessClass::ThreadLocal);
    }
  }
}

// `rnd rd, K` draws from the half-open range [0, K): the VM computes
// `next() % K`, so K-1 is the largest producible value and both interval
// domains must say [0, K-1] — not [0, K]. A non-positive bound means
// the raw 64-bit stream (no reduction): interval top.
TEST(ValueFlow, RndBoundIsHalfOpen) {
  Program P = asmProg(R"(
.global x
.thread t
  rnd r1, 8
  rnd r2, 1
  rnd r3, 0
  st r1, [@x]
  halt
)");
  ValueFlowAnalysis VF(P);
  Interval R1 = VF.valueBefore(0, 3, 1);
  EXPECT_EQ(R1.Lo, 0);
  EXPECT_EQ(R1.Hi, 7);
  // A bound of 1 pins the register to exactly 0.
  Interval R2 = VF.valueBefore(0, 3, 2);
  EXPECT_TRUE(R2.isConstant());
  EXPECT_EQ(R2.Lo, 0);
  // Bound 0 is the unreduced stream.
  EXPECT_TRUE(VF.valueBefore(0, 3, 3).isFull());
  // The plain interval domain agrees on the half-open bound.
  const EscapeAnalysis &E = VF.escape(0);
  EXPECT_EQ(E.valueBefore(3, 1).Lo, 0);
  EXPECT_EQ(E.valueBefore(3, 1).Hi, 7);
  EXPECT_TRUE(E.valueBefore(3, 3).isFull());
}
