//===- tests/ObsSchemaTest.cpp - Instrument-key schema pin ----------------===//
//
// The obs registry's counter/timer names are a stable schema (DESIGN.md
// section 15): golden counter inventories and svd-metrics-v1 consumers
// key on them. obs::isDocumentedKey is the machine-checkable twin of
// the document; this test drives every registered detector, a faulted
// sweep, a budget-degraded sample, and the parallel runner through one
// registry and fails on any exported key the schema doesn't cover — so
// a new instrument must land together with its documentation.
//
//===----------------------------------------------------------------------===//

#include "fault/Fault.h"
#include "harness/Harness.h"
#include "harness/Runner.h"
#include "obs/Obs.h"
#include "svd/OnlineSvd.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::harness;
using workloads::Workload;
using workloads::WorkloadParams;

TEST(ObsSchema, AcceptsDocumentedKeys) {
  EXPECT_TRUE(obs::isDocumentedKey("vm.instructions"));
  EXPECT_TRUE(obs::isDocumentedKey("harness.samples"));
  EXPECT_TRUE(obs::isDocumentedKey("detect.svd.reports"));
  EXPECT_TRUE(obs::isDocumentedKey("detect.svd.cus_ended"));
  EXPECT_TRUE(obs::isDocumentedKey("detect.frd.events"));
  EXPECT_TRUE(obs::isDocumentedKey("detect.none.memory_bytes"));
  EXPECT_TRUE(obs::isDocumentedKey("detect.hwsvd.cache.hits"));
  EXPECT_TRUE(obs::isDocumentedKey("detect.offline.degraded"));
  EXPECT_TRUE(obs::isDocumentedKey("shadow.svd.pages"));
  EXPECT_TRUE(obs::isDocumentedKey("shadow.lockset.bytes"));
  EXPECT_TRUE(obs::isDocumentedKey("svd.cu_pruned_events"));
  EXPECT_TRUE(obs::isDocumentedKey("analysis.proven_cus"));
  EXPECT_TRUE(obs::isDocumentedKey("fault.preemptions"));
  EXPECT_TRUE(obs::isDocumentedKey("runner.total"));
  EXPECT_TRUE(obs::isDocumentedKey("harness.sample.detector_run"));
}

TEST(ObsSchema, RejectsUndocumentedKeys) {
  EXPECT_FALSE(obs::isDocumentedKey(""));
  EXPECT_FALSE(obs::isDocumentedKey("vm.bogus"));
  EXPECT_FALSE(obs::isDocumentedKey("totally.made.up"));
  EXPECT_FALSE(obs::isDocumentedKey("detect."));
  EXPECT_FALSE(obs::isDocumentedKey("detect.svd"));
  EXPECT_FALSE(obs::isDocumentedKey("detect.svd."));
  EXPECT_FALSE(obs::isDocumentedKey("detect.svd.bogus"));
  EXPECT_FALSE(obs::isDocumentedKey("shadow.svd.bogus"));
  EXPECT_FALSE(obs::isDocumentedKey("shadow..pages"));
  EXPECT_FALSE(obs::isDocumentedKey("fault.bogus"));
}

TEST(ObsSchema, EveryExportedInstrumentIsDocumented) {
  obs::Registry R;

  // Small enough that every registered detector accepts it (hwsvd
  // requires numThreads <= its default 4-CPU cache).
  WorkloadParams P;
  P.Threads = 2;
  P.Iterations = 10;
  Workload W = workloads::apacheLog(P);

  // Every registered detector exports through one registry.
  for (const std::string &Name : detectorRegistry().names()) {
    SampleConfig C;
    C.Seed = 3;
    C.Obs = &R;
    runSample(W, Name, C);
  }

  // The fault counters only appear under an active plan; run the whole
  // default matrix so every fault.* key is exported. Crashing plans
  // throw out of bare runSample (containment lives in ParallelRunner),
  // and a crashed sample skips its export — the non-crashing plans
  // still cover the fault.* namespace.
  for (const fault::FaultPlanConfig &PC : fault::defaultPlanMatrix(4)) {
    fault::FaultPlan Plan(PC, /*Seed=*/5);
    SampleConfig C;
    C.Seed = 5;
    C.Obs = &R;
    C.Faults = &Plan;
    try {
      runSample(W, "svd", C);
    } catch (const fault::InjectedCrash &) {
    }
  }

  // Degradation counters only appear on degraded samples; force one
  // with a tiny state budget through the shared StateBudget plumbing.
  {
    auto DC = std::make_shared<detect::OnlineSvdDetectorConfig>();
    DC->Budget.MaxStateEntries = 2;
    SampleConfig C;
    C.Seed = 3;
    C.Obs = &R;
    C.Detector = DC;
    runSample(W, "svd", C);
  }

  // Runner keys (runner.*) come from the parallel sample engine.
  {
    std::vector<SampleSpec> Specs;
    for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
      SampleSpec S;
      S.Workload = &W;
      S.Detector = "svd";
      S.Config.Seed = Seed;
      Specs.push_back(S);
    }
    RunnerConfig RC;
    RC.Jobs = 2;
    RC.Obs = &R;
    ParallelRunner(RC).run(Specs);
  }

  for (const auto &[Name, V] : R.counters())
    EXPECT_TRUE(obs::isDocumentedKey(Name))
        << "undocumented counter '" << Name
        << "' — add it to DESIGN.md section 15 and obs::isDocumentedKey";
  for (const auto &[Name, S] : R.timers())
    EXPECT_TRUE(obs::isDocumentedKey(Name))
        << "undocumented timer '" << Name
        << "' — add it to DESIGN.md section 15 and obs::isDocumentedKey";
}
