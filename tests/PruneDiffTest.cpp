//===- tests/PruneDiffTest.cpp - Prove-and-prune differential soundness ---===//
//
// The prove-and-prune soundness contract, tested differentially: for
// every workload of every paper suite (table1/table2/sec73/fig1/
// predict), under multiple seeds and timeslice regimes, and under the
// chaos fault-plan matrix of PR 5, an OnlineSvd running with the static
// CU atomicity proofs wired in must produce a violation report stream
// BYTE-IDENTICAL to an unpruned OnlineSvd observing the very same
// execution. Both detectors ride one vm::Machine, so the interleaving
// is shared by construction and any divergence is the pruning's fault.
//
// Scope: violation reports (and their true/false classification) are
// compared field-by-field. The a-posteriori CU log is intentionally
// NOT compared — pruned units do not record their (provably benign)
// local communication, which is the documented report-equivalence
// boundary (DESIGN.md section 12).
//
//===----------------------------------------------------------------------===//

#include "analysis/AccessTable.h"
#include "analysis/AtomicProof.h"
#include "fault/Fault.h"
#include "harness/Suites.h"
#include "svd/OnlineSvd.h"
#include "vm/Machine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace svd;

namespace {

/// Field-by-field equality; Violation has no operator== of its own.
bool sameViolation(const detect::Violation &A, const detect::Violation &B) {
  return A.Seq == B.Seq && A.Tid == B.Tid && A.Pc == B.Pc &&
         A.OtherTid == B.OtherTid && A.OtherPc == B.OtherPc &&
         A.OtherSeq == B.OtherSeq && A.Address == B.Address;
}

struct DiffResult {
  uint64_t Events = 0;
  uint64_t Pruned = 0;
};

/// Runs \p W once under \p MC with a full and a pruned OnlineSvd on the
/// SAME machine and asserts report equivalence. Returns the pruned
/// detector's counters so callers can assert pruning actually engaged.
/// \p Proofs/\p Table belong to the caller (shared across runs).
DiffResult runDiff(const workloads::Workload &W, vm::MachineConfig MC,
                   const analysis::AccessTable &Table,
                   const analysis::CuProofs &Proofs,
                   const std::string &Ctx) {
  vm::Machine M(W.Program, MC);

  detect::OnlineSvdConfig FullCfg;
  detect::OnlineSvd Full(W.Program, FullCfg);

  detect::OnlineSvdConfig PrunedCfg;
  PrunedCfg.Access = &Table;
  PrunedCfg.Proofs = &Proofs;
  detect::OnlineSvd Pruned(W.Program, PrunedCfg);

  M.addObserver(&Full);
  M.addObserver(&Pruned);
  // A fault plan may crash the run mid-sample; both observers saw the
  // same prefix, so the comparison below is still exact.
  try {
    M.run();
  } catch (const fault::InjectedCrash &) {
  }

  const std::vector<detect::Violation> &VF = Full.violations();
  const std::vector<detect::Violation> &VP = Pruned.violations();
  EXPECT_EQ(VF.size(), VP.size()) << Ctx;
  for (size_t I = 0; I < VF.size() && I < VP.size(); ++I) {
    EXPECT_TRUE(sameViolation(VF[I], VP[I]))
        << Ctx << ": violation " << I << " diverged: full {seq " << VF[I].Seq
        << " t" << unsigned(VF[I].Tid) << " pc " << VF[I].Pc << "} pruned {seq "
        << VP[I].Seq << " t" << unsigned(VP[I].Tid) << " pc " << VP[I].Pc
        << "}";
    // True-report classification is part of the contract: pruning must
    // not reclassify a finding.
    EXPECT_EQ(W.isTrueReport(VF[I]), W.isTrueReport(VP[I])) << Ctx;
  }
  DiffResult R;
  R.Pruned = Pruned.prunedAccesses();
  R.Events = M.steps();
  return R;
}

vm::MachineConfig configFor(uint64_t Seed, uint32_t MinTs, uint32_t MaxTs) {
  vm::MachineConfig MC;
  MC.SchedSeed = Seed;
  MC.MinTimeslice = MinTs;
  MC.MaxTimeslice = MaxTs;
  return MC;
}

/// Shared static artifacts for one workload.
struct Statics {
  analysis::AccessTable Table;
  analysis::CuProofs Proofs;
  explicit Statics(const isa::Program &P)
      : Table(analysis::buildAccessTable(P)), Proofs(analysis::proveAtomicCus(P)) {}
};

} // namespace

// Every suite's workloads at the suite's REAL parameterization
// (harness::suiteWorkloads is the single source of truth the benches
// use), across seeds and two timeslice regimes. Each combination is a
// single sample, which keeps the sweep affordable.
TEST(PruneDiff, AllSuitesAllSeeds) {
  for (const char *Suite :
       {"table1", "table2", "sec73", "fig1", "predict", "interproc"}) {
    std::vector<workloads::Workload> Ws = harness::suiteWorkloads(Suite);
    ASSERT_FALSE(Ws.empty()) << Suite;
    for (const workloads::Workload &W : Ws) {
      Statics S(W.Program);
      for (uint64_t Seed : {1, 7, 23}) {
        for (auto [MinTs, MaxTs] : {std::pair<uint32_t, uint32_t>{1, 4},
                                    std::pair<uint32_t, uint32_t>{8, 32}}) {
          std::string Ctx = std::string(Suite) + "/" + W.Name + " seed " +
                            std::to_string(Seed) + " ts " +
                            std::to_string(MinTs) + ".." +
                            std::to_string(MaxTs);
          runDiff(W, configFor(Seed, MinTs, MaxTs), S.Table, S.Proofs, Ctx);
        }
      }
    }
  }
}

// The same equivalence under PR 5's deterministic fault-plan matrix:
// stalls, spurious lock failures, preemption storms, and mid-run
// injected crashes must not open a gap between full and pruned runs.
TEST(PruneDiff, ChaosPlanMatrix) {
  workloads::WorkloadParams WP;
  WP.Threads = 4;
  WP.Iterations = 20;
  WP.WorkPadding = 8;
  WP.TouchOneIn = 2;
  std::vector<workloads::Workload> Ws = workloads::table1Workloads(WP);
  Ws.push_back(workloads::lockedCounters(WP));
  Ws.push_back(workloads::tidSlab(WP));

  std::vector<fault::FaultPlanConfig> Plans = fault::defaultPlanMatrix(5);
  for (const workloads::Workload &W : Ws) {
    Statics S(W.Program);
    for (const fault::FaultPlanConfig &PC : Plans) {
      for (uint64_t Seed : {1, 11}) {
        fault::FaultPlan Plan(PC, Seed);
        vm::MachineConfig MC = configFor(Seed, 1, 4);
        MC.Faults = &Plan;
        runDiff(W, MC, S.Table, S.Proofs,
                W.Name + " plan " + PC.Name + " seed " +
                    std::to_string(Seed));
      }
    }
  }
}

// The showcase workloads must actually exercise the fast path: zero
// pruned events would make the whole differential vacuous.
TEST(PruneDiff, ShowcaseWorkloadsPruneNonzero) {
  workloads::WorkloadParams WP;
  WP.Threads = 4;
  WP.Iterations = 20;
  WP.WorkPadding = 8;
  uint64_t TotalPruned = 0;
  for (workloads::Workload W :
       {workloads::lockedCounters(WP), workloads::tidSlab(WP)}) {
    Statics S(W.Program);
    DiffResult R = runDiff(W, configFor(5, 1, 4), S.Table, S.Proofs, W.Name);
    EXPECT_GT(R.Pruned, 0u) << W.Name;
    TotalPruned += R.Pruned;
  }
  EXPECT_GT(TotalPruned, 0u);
}

// The function-structured twin pair: procCache's cross-function CU
// (lock; call get; rmw; call put; unlock) is proven two-phase by the
// interprocedural AtomicProof, so its accesses must actually hit the
// pruned fast path — and the buggy procGap twin must stay
// report-identical under pruning (its gap CU is unprovable, so pruning
// must not eat the lost-update report).
TEST(PruneDiff, ProcWorkloadsPruneNonzeroAndStayEquivalent) {
  workloads::WorkloadParams WP;
  WP.Threads = 3;
  WP.Iterations = 20;
  WP.WorkPadding = 8;
  workloads::Workload Cache = workloads::procCache(WP);
  {
    Statics S(Cache.Program);
    DiffResult R =
        runDiff(Cache, configFor(3, 1, 4), S.Table, S.Proofs, Cache.Name);
    EXPECT_GT(R.Pruned, 0u) << "cross-function proof never engaged";
  }
  workloads::Workload Gap = workloads::procGap(WP);
  Statics S(Gap.Program);
  for (uint64_t Seed : {1, 7, 23})
    runDiff(Gap, configFor(Seed, 1, 4), S.Table, S.Proofs,
            Gap.Name + " seed " + std::to_string(Seed));
}

// PgSQL at table1 size prunes too (the paper workload the proofs were
// built to serve) — pins the end-to-end pipeline on a non-toy program.
TEST(PruneDiff, PgsqlPrunesAtTable1Size) {
  workloads::WorkloadParams WP;
  WP.Threads = 4;
  WP.Iterations = 150;
  WP.WorkPadding = 80;
  workloads::Workload W = workloads::pgsqlOltp(WP);
  Statics S(W.Program);
  DiffResult R = runDiff(W, configFor(1, 1, 4), S.Table, S.Proofs, W.Name);
  EXPECT_GT(R.Pruned, 0u);
}
