//===- tests/MigrationTest.cpp - Thread-to-CPU binding tests ---------------===//

#include "TestUtil.h"
#include "svd/OnlineSvd.h"

#include <gtest/gtest.h>

#include <set>

using namespace svd;
using isa::assembleOrDie;
using testutil::sched;
using vm::Machine;
using vm::MachineConfig;

namespace {

/// Records every (tid, cpu) pair seen in the event stream.
struct CpuObserver : vm::ExecutionObserver {
  std::set<std::pair<isa::ThreadId, uint32_t>> Seen;
  uint32_t MaxCpu = 0;
  void onAlu(const vm::EventCtx &Ctx) override { note(Ctx); }
  void onLoad(const vm::EventCtx &Ctx, isa::Addr, isa::Word) override {
    note(Ctx);
  }
  void onStore(const vm::EventCtx &Ctx, isa::Addr, isa::Word) override {
    note(Ctx);
  }
  void onBranch(const vm::EventCtx &Ctx, bool, uint32_t) override {
    note(Ctx);
  }
  void note(const vm::EventCtx &Ctx) {
    Seen.insert({Ctx.Tid, Ctx.Cpu});
    MaxCpu = std::max(MaxCpu, Ctx.Cpu);
  }
};

const char *LoopSource = R"(
.global g
.thread t x4
  li r5, 50
loop:
  ld r1, [@g]
  addi r1, r1, 1
  st r1, [@g]
  addi r5, r5, -1
  bnez r5, loop
  halt
)";

} // namespace

TEST(Migration, DefaultBindingIsIdentity) {
  isa::Program P = assembleOrDie(LoopSource);
  Machine M(P);
  CpuObserver O;
  M.addObserver(&O);
  M.run();
  for (const auto &[Tid, Cpu] : O.Seen)
    EXPECT_EQ(Tid, Cpu);
}

TEST(Migration, CpusBoundRoundRobinWithoutMigration) {
  isa::Program P = assembleOrDie(LoopSource);
  MachineConfig MC;
  MC.NumCpus = 2;
  Machine M(P, MC);
  CpuObserver O;
  M.addObserver(&O);
  M.run();
  EXPECT_LT(O.MaxCpu, 2u);
  // Four threads, two CPUs, no migration: exactly one binding each.
  EXPECT_EQ(O.Seen.size(), 4u);
  EXPECT_TRUE(O.Seen.count({0, 0}));
  EXPECT_TRUE(O.Seen.count({1, 1}));
  EXPECT_TRUE(O.Seen.count({2, 0}));
  EXPECT_TRUE(O.Seen.count({3, 1}));
}

TEST(Migration, MigrationChangesBindingsOverTime) {
  isa::Program P = assembleOrDie(LoopSource);
  MachineConfig MC;
  MC.NumCpus = 4;
  MC.MigrationInterval = 50;
  Machine M(P, MC);
  CpuObserver O;
  M.addObserver(&O);
  M.run();
  // With migrations, some thread must have run on several CPUs.
  EXPECT_GT(O.Seen.size(), 4u);
}

TEST(Migration, MigrationIsDeterministicPerSeed) {
  isa::Program P = assembleOrDie(LoopSource);
  MachineConfig MC;
  MC.SchedSeed = 5;
  MC.NumCpus = 2;
  MC.MigrationInterval = 40;
  Machine A(P, MC);
  Machine B(P, MC);
  CpuObserver OA, OB;
  A.addObserver(&OA);
  B.addObserver(&OB);
  A.run();
  B.run();
  EXPECT_EQ(OA.Seen, OB.Seen);
}

TEST(Migration, CheckpointRestoresBindings) {
  isa::Program P = assembleOrDie(LoopSource);
  MachineConfig MC;
  MC.NumCpus = 2;
  MC.MigrationInterval = 30;
  Machine M(P, MC);
  vm::StopReason R;
  for (int I = 0; I < 100 && M.stepOnce(R); ++I) {
  }
  vm::Checkpoint C = M.checkpoint();
  CpuObserver O1;
  M.addObserver(&O1);
  M.run();
  M.removeObserver(&O1);
  M.restore(C);
  CpuObserver O2;
  M.addObserver(&O2);
  M.run();
  EXPECT_EQ(O1.Seen, O2.Seen);
}

TEST(Migration, CpuKeyedSvdEqualsThreadKeyedWhenPinned) {
  // One CPU per thread and no migration: the Section 4.3 approximation
  // is exact.
  isa::Program P = assembleOrDie(LoopSource);
  MachineConfig MC;
  MC.SchedSeed = 3;
  MC.NumCpus = 4;
  Machine M(P, MC);
  detect::OnlineSvd ByThread(P);
  detect::OnlineSvdConfig ByCpuCfg;
  ByCpuCfg.NumCpus = 4;
  detect::OnlineSvd ByCpu(P, ByCpuCfg);
  M.addObserver(&ByThread);
  M.addObserver(&ByCpu);
  M.run();
  EXPECT_EQ(ByThread.violations().size(), ByCpu.violations().size());
}

TEST(Migration, SharedCpuBlendsThreadsAndMissesTheirConflicts) {
  // Two threads multiplexed on ONE CPU: a per-processor detector sees a
  // single access stream, so their mutual interference has no "remote"
  // accesses at all — the approximation's blind spot.
  isa::Program P = assembleOrDie(R"(
.global outcnt
.thread w x2
  ld r1, [@outcnt]
  addi r2, r1, 1
  st r2, [@outcnt]
  halt
)");
  auto S = sched({{0, 1}, {1, 4}, {0, 3}});

  MachineConfig MC;
  MC.NumCpus = 1;
  Machine M(P, MC);
  detect::OnlineSvd ByThread(P);
  detect::OnlineSvdConfig ByCpuCfg;
  ByCpuCfg.NumCpus = 1;
  detect::OnlineSvd ByCpu(P, ByCpuCfg);
  M.addObserver(&ByThread);
  M.addObserver(&ByCpu);
  M.setReplaySchedule(S);
  M.run();
  M.clearReplaySchedule();
  M.run();
  EXPECT_EQ(ByThread.violations().size(), 1u);
  EXPECT_TRUE(ByCpu.violations().empty())
      << "one lane cannot see its own interleaving";
}

TEST(Migration, CheckpointRestoresLiveCallStacks) {
  // Proc-structured replicas under migration: the checkpoint is taken
  // while at least one thread sits inside a call, and the restored run
  // must replay the same (tid, cpu) event stream and final memory.
  isa::Program P = assembleOrDie(R"(
.global g
.thread t x4
  li r5, 40
loop:
  call bump
  addi r5, r5, -1
  bnez r5, loop
  halt
.proc bump
  ld r1, [@g]
  addi r1, r1, 1
  st r1, [@g]
  ret
)");
  MachineConfig MC;
  MC.NumCpus = 2;
  MC.MigrationInterval = 30;
  Machine M(P, MC);
  vm::StopReason R;
  auto someStackLive = [&] {
    for (isa::ThreadId Tid = 0; Tid < P.numThreads(); ++Tid)
      if (!M.callStack(Tid).empty())
        return true;
    return false;
  };
  for (int I = 0; I < 200 && !(I > 50 && someStackLive()); ++I)
    ASSERT_TRUE(M.stepOnce(R));
  ASSERT_TRUE(someStackLive());
  vm::Checkpoint C = M.checkpoint();
  std::vector<std::vector<uint32_t>> Stacks;
  for (isa::ThreadId Tid = 0; Tid < P.numThreads(); ++Tid)
    Stacks.push_back(M.callStack(Tid));

  CpuObserver O1;
  M.addObserver(&O1);
  M.run();
  isa::Word Final = M.readMem(P.addressOf("g"));
  M.removeObserver(&O1);

  M.restore(C);
  for (isa::ThreadId Tid = 0; Tid < P.numThreads(); ++Tid)
    EXPECT_EQ(M.callStack(Tid), Stacks[Tid]) << "tid " << unsigned(Tid);
  CpuObserver O2;
  M.addObserver(&O2);
  M.run();
  EXPECT_EQ(O1.Seen, O2.Seen);
  EXPECT_EQ(M.readMem(P.addressOf("g")), Final);
}
