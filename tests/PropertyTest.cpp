//===- tests/PropertyTest.cpp - Parameterized property sweeps --------------===//
//
// Cross-cutting invariants checked over seed sweeps and workload
// families (TEST_P / INSTANTIATE_TEST_SUITE_P):
//
//  * determinism: a seed fully determines the execution;
//  * non-perturbation: observers never change the execution;
//  * replay: a recorded schedule reproduces the execution and the
//    detector's verdicts exactly;
//  * checkpoint/restore transparency;
//  * structural well-formedness of the d-PDG and the CU partition;
//  * SVD's semantic core: serial executions are serializable (silent),
//    fully locked programs are silent, and the hardware detector agrees
//    with the software detector on ideal caches.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "support/Error.h"
#include "cu/CuPartition.h"
#include "pdg/Pdg.h"
#include "race/HappensBefore.h"
#include "race/Lockset.h"
#include "svd/HardwareSvd.h"
#include "svd/OfflineDetector.h"
#include "svd/OnlineSvd.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace svd;
using trace::EventKind;
using trace::ProgramTrace;
using vm::Machine;
using vm::MachineConfig;

namespace {

/// The workload families swept by the structural properties.
enum class Family { Apache, Mysql, Pgsql, Queue, RandomBuggy, RandomLocked };

const char *familyName(Family F) {
  switch (F) {
  case Family::Apache:
    return "Apache";
  case Family::Mysql:
    return "Mysql";
  case Family::Pgsql:
    return "Pgsql";
  case Family::Queue:
    return "Queue";
  case Family::RandomBuggy:
    return "RandomBuggy";
  case Family::RandomLocked:
    return "RandomLocked";
  }
  return "?";
}

workloads::Workload makeWorkload(Family F, uint64_t Seed) {
  workloads::WorkloadParams P;
  P.Threads = 3;
  P.Iterations = 12;
  P.WorkPadding = 10;
  switch (F) {
  case Family::Apache:
    return workloads::apacheLog(P);
  case Family::Mysql:
    return workloads::mysqlPrepared(P);
  case Family::Pgsql:
    return workloads::pgsqlOltp(P);
  case Family::Queue:
    return workloads::sharedQueue(P);
  case Family::RandomBuggy: {
    workloads::RandomParams R;
    R.Seed = Seed * 31 + 7;
    R.Threads = 3;
    R.Iterations = 20;
    R.OmitLockProbability = 0.3;
    return workloads::randomWorkload(R);
  }
  case Family::RandomLocked: {
    workloads::RandomParams R;
    R.Seed = Seed * 31 + 7;
    R.Threads = 3;
    R.Iterations = 20;
    R.OmitLockProbability = 0.0;
    R.BenignReadProbability = 0.0;
    return workloads::randomWorkload(R);
  }
  }
  SVD_UNREACHABLE("covered switch");
}

struct Param {
  Family F;
  uint64_t Seed;
};

std::vector<Param> allParams() {
  std::vector<Param> Out;
  for (Family F : {Family::Apache, Family::Mysql, Family::Pgsql,
                   Family::Queue, Family::RandomBuggy,
                   Family::RandomLocked})
    for (uint64_t Seed : {1, 5, 9})
      Out.push_back({F, Seed});
  return Out;
}

std::string paramName(const testing::TestParamInfo<Param> &Info) {
  return std::string(familyName(Info.param.F)) + "_seed" +
         std::to_string(Info.param.Seed);
}

class WorkloadProperty : public testing::TestWithParam<Param> {
protected:
  workloads::Workload W = makeWorkload(GetParam().F, GetParam().Seed);
  MachineConfig config() const {
    MachineConfig MC;
    MC.SchedSeed = GetParam().Seed;
    MC.MinTimeslice = 1;
    MC.MaxTimeslice = 3;
    return MC;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Execution-substrate properties.
//===----------------------------------------------------------------------===//

TEST_P(WorkloadProperty, SameSeedSameExecution) {
  Machine A(W.Program, config());
  Machine B(W.Program, config());
  A.run();
  B.run();
  ASSERT_EQ(A.steps(), B.steps());
  EXPECT_EQ(A.schedule(), B.schedule());
  for (isa::Addr Ad = 0; Ad < W.Program.MemoryWords; ++Ad)
    ASSERT_EQ(A.readMem(Ad), B.readMem(Ad)) << "word " << Ad;
}

TEST_P(WorkloadProperty, ObserversDoNotPerturbExecution) {
  Machine Bare(W.Program, config());
  Bare.run();

  Machine Observed(W.Program, config());
  detect::OnlineSvd Svd(W.Program);
  race::HappensBeforeDetector Frd(W.Program);
  race::LocksetDetector Ls(W.Program);
  trace::TraceRecorder Rec(W.Program);
  Observed.addObserver(&Svd);
  Observed.addObserver(&Frd);
  Observed.addObserver(&Ls);
  Observed.addObserver(&Rec);
  Observed.run();

  ASSERT_EQ(Bare.steps(), Observed.steps());
  EXPECT_EQ(Bare.schedule(), Observed.schedule());
  for (isa::Addr Ad = 0; Ad < W.Program.MemoryWords; ++Ad)
    ASSERT_EQ(Bare.readMem(Ad), Observed.readMem(Ad));
}

TEST_P(WorkloadProperty, ReplayReproducesDetectorVerdicts) {
  Machine Original(W.Program, config());
  detect::OnlineSvd Svd1(W.Program);
  Original.addObserver(&Svd1);
  Original.run();

  MachineConfig Other;
  Other.SchedSeed = GetParam().Seed + 1000; // irrelevant under replay
  Machine Replayed(W.Program, Other);
  detect::OnlineSvd Svd2(W.Program);
  Replayed.addObserver(&Svd2);
  Replayed.setReplaySchedule(Original.schedule());
  Replayed.run();

  ASSERT_EQ(Svd1.violations().size(), Svd2.violations().size());
  for (size_t I = 0; I < Svd1.violations().size(); ++I) {
    EXPECT_EQ(Svd1.violations()[I].Seq, Svd2.violations()[I].Seq);
    EXPECT_EQ(Svd1.violations()[I].staticKey(),
              Svd2.violations()[I].staticKey());
  }
  EXPECT_EQ(Svd1.cuLog().size(), Svd2.cuLog().size());
}

TEST_P(WorkloadProperty, CheckpointRestoreIsTransparent) {
  Machine A(W.Program, config());
  vm::StopReason R;
  for (int I = 0; I < 50 && A.stepOnce(R); ++I) {
  }
  vm::Checkpoint C = A.checkpoint();
  A.run();
  uint64_t FinalSteps = A.steps();
  std::vector<isa::Word> FinalMem;
  for (isa::Addr Ad = 0; Ad < W.Program.MemoryWords; ++Ad)
    FinalMem.push_back(A.readMem(Ad));

  A.restore(C);
  A.run();
  ASSERT_EQ(A.steps(), FinalSteps);
  for (isa::Addr Ad = 0; Ad < W.Program.MemoryWords; ++Ad)
    ASSERT_EQ(A.readMem(Ad), FinalMem[Ad]) << "word " << Ad;
}

//===----------------------------------------------------------------------===//
// Structural properties of the analyses.
//===----------------------------------------------------------------------===//

TEST_P(WorkloadProperty, PdgArcsAreWellFormed) {
  ProgramTrace T = testutil::recordRun(W.Program, GetParam().Seed);
  pdg::DynamicPdg G = pdg::DynamicPdg::build(T);
  for (const pdg::DepArc &A : G.arcs()) {
    ASSERT_LT(A.From, A.To) << "arcs must follow execution order";
    if (A.Kind == pdg::DepKind::Conflict) {
      EXPECT_NE(T[A.From].Tid, T[A.To].Tid);
      EXPECT_TRUE(A.ViaMemory);
    } else {
      EXPECT_EQ(T[A.From].Tid, T[A.To].Tid);
    }
    if (A.Kind == pdg::DepKind::Control) {
      EXPECT_EQ(T[A.From].Kind, EventKind::Branch);
    }
    if (A.Kind == pdg::DepKind::TrueShared) {
      EXPECT_TRUE(A.ViaMemory);
      EXPECT_TRUE(T.isSharedAddress(A.Address));
    }
  }
}

TEST_P(WorkloadProperty, CuPartitionIsWellFormed) {
  ProgramTrace T = testutil::recordRun(W.Program, GetParam().Seed);
  pdg::DynamicPdg G = pdg::DynamicPdg::build(T);
  cu::CuPartition CUs = cu::CuPartition::compute(T, G);

  std::vector<bool> Seen(T.size(), false);
  for (const cu::ComputationalUnit &U : CUs.units()) {
    ASSERT_FALSE(U.Events.empty());
    for (uint32_t E : U.Events) {
      ASSERT_FALSE(Seen[E]) << "event in two CUs";
      Seen[E] = true;
      EXPECT_EQ(T[E].Tid, U.Tid);
      EXPECT_EQ(CUs.unitOf(E), U.Id);
      EXPECT_GE(T[E].Seq, U.BeginSeq);
      EXPECT_LE(T[E].Seq, U.EndSeq);
    }
  }
  // Every dynamic statement is in exactly one CU.
  for (uint32_t E = 0; E < T.size(); ++E) {
    bool IsStatement =
        T[E].Kind == EventKind::Load || T[E].Kind == EventKind::Store ||
        T[E].Kind == EventKind::Alu || T[E].Kind == EventKind::Branch;
    EXPECT_EQ(Seen[E], IsStatement);
  }
}

TEST_P(WorkloadProperty, ViolationReportsAreWellFormed) {
  Machine M(W.Program, config());
  detect::OnlineSvd Svd(W.Program);
  M.addObserver(&Svd);
  M.run();
  for (const detect::Violation &V : Svd.violations()) {
    EXPECT_NE(V.Tid, V.OtherTid);
    EXPECT_LT(V.Address, W.Program.MemoryWords);
    EXPECT_LT(V.Pc, W.Program.Threads[V.Tid].Code.size());
    EXPECT_LT(V.OtherPc, W.Program.Threads[V.OtherTid].Code.size());
    EXPECT_LE(V.OtherSeq, V.Seq);
  }
}

//===----------------------------------------------------------------------===//
// Semantic properties of the detectors.
//===----------------------------------------------------------------------===//

TEST_P(WorkloadProperty, SerialExecutionsAreSerializable) {
  // With serial scheduling there is no interleaving inside any CU, so
  // SVD (which checks executions, unlike race detectors) must be
  // silent — even on the buggy programs.
  MachineConfig MC = config();
  MC.SerialMode = true;
  Machine M(W.Program, MC);
  detect::OnlineSvd Svd(W.Program);
  M.addObserver(&Svd);
  vm::StopReason R = M.run();
  if (R != vm::StopReason::AllHalted)
    GTEST_SKIP() << "serial run deadlocked (lock order dependent)";
  EXPECT_TRUE(Svd.violations().empty());
}

TEST_P(WorkloadProperty, HardwareAgreesWithSoftwareOnIdealCache) {
  Machine M(W.Program, config());
  detect::OnlineSvd Sw(W.Program);
  detect::HardwareSvdConfig HC;
  HC.Cache.NumCpus = W.Program.numThreads();
  HC.Cache.Sets = 4096;
  HC.Cache.Ways = 4;
  HC.Cache.LineWords = 1;
  detect::HardwareSvd Hw(W.Program, HC);
  M.addObserver(&Sw);
  M.addObserver(&Hw);
  M.run();
  EXPECT_EQ(Sw.violations().empty(), Hw.violations().empty());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadProperty,
                         testing::ValuesIn(allParams()), paramName);

//===----------------------------------------------------------------------===//
// Seed sweep: fully locked random programs keep every detector silent.
//===----------------------------------------------------------------------===//

class LockedSilence : public testing::TestWithParam<uint64_t> {};

TEST_P(LockedSilence, AllDetectorsSilent) {
  workloads::RandomParams R;
  R.Seed = GetParam();
  R.Threads = 4;
  R.Iterations = 25;
  R.OmitLockProbability = 0.0;
  R.BenignReadProbability = 0.0;
  workloads::Workload W = workloads::randomWorkload(R);

  MachineConfig MC;
  MC.SchedSeed = GetParam() * 17 + 3;
  Machine M(W.Program, MC);
  detect::OnlineSvd Svd(W.Program);
  race::HappensBeforeDetector Frd(W.Program);
  race::LocksetDetector Ls(W.Program);
  M.addObserver(&Svd);
  M.addObserver(&Frd);
  M.addObserver(&Ls);
  M.run();
  EXPECT_TRUE(Svd.violations().empty());
  EXPECT_TRUE(Frd.races().empty());
  EXPECT_TRUE(Ls.reports().empty());
  EXPECT_FALSE(W.Manifested(M));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockedSilence,
                         testing::Range<uint64_t>(1, 11));

//===----------------------------------------------------------------------===//
// Seed sweep: lost updates imply a racy report from FRD and (serial
// scheduling aside) usually from SVD; the manifested bug never hides
// from *both* detector families.
//===----------------------------------------------------------------------===//

class BuggySweep : public testing::TestWithParam<uint64_t> {};

TEST_P(BuggySweep, ManifestedBugsLeaveEvidence) {
  workloads::RandomParams R;
  R.Seed = 77;
  R.Threads = 4;
  R.Iterations = 30;
  R.OmitLockProbability = 0.5;
  workloads::Workload W = workloads::randomWorkload(R);

  MachineConfig MC;
  MC.SchedSeed = GetParam();
  Machine M(W.Program, MC);
  detect::OnlineSvd Svd(W.Program);
  race::HappensBeforeDetector Frd(W.Program);
  M.addObserver(&Svd);
  M.addObserver(&Frd);
  M.run();
  if (!W.Manifested(M))
    GTEST_SKIP() << "bug did not manifest under this seed";
  // A lost update is a data race by construction: FRD must see it.
  EXPECT_FALSE(Frd.races().empty());
  // SVD sees it online or in the a-posteriori log.
  EXPECT_TRUE(!Svd.violations().empty() || !Svd.cuLog().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuggySweep,
                         testing::Range<uint64_t>(1, 11));

//===----------------------------------------------------------------------===//
// Differential validation of the offline algorithm (Figures 5-6): like
// the online detector, it must be silent on serial executions, where
// every inferred CU trivially serializes.
//===----------------------------------------------------------------------===//

class OfflineSerial : public testing::TestWithParam<Param> {};

TEST_P(OfflineSerial, OfflineDetectorSilentOnSerialExecutions) {
  workloads::Workload W = makeWorkload(GetParam().F, GetParam().Seed);
  MachineConfig MC;
  MC.SchedSeed = GetParam().Seed;
  MC.SerialMode = true;
  Machine M(W.Program, MC);
  trace::TraceRecorder Rec(W.Program);
  M.addObserver(&Rec);
  if (M.run() != vm::StopReason::AllHalted)
    GTEST_SKIP() << "serial run deadlocked (lock order dependent)";
  EXPECT_TRUE(detect::detectOfflineFromTrace(Rec.trace()).empty());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, OfflineSerial,
                         testing::ValuesIn(allParams()), paramName);
