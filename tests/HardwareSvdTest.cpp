//===- tests/HardwareSvdTest.cpp - Cache-based SVD tests -------------------===//

#include "TestUtil.h"
#include "svd/HardwareSvd.h"
#include "svd/OnlineSvd.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::detect;
using isa::assembleOrDie;
using testutil::sched;
using vm::Machine;
using vm::MachineConfig;

namespace {

const char *RmwSource = R"(
.global outcnt
.thread w x2
  ld r1, [@outcnt]
  addi r2, r1, 1
  st r2, [@outcnt]
  halt
)";

HardwareSvdConfig bigCacheConfig(uint32_t Cpus = 4) {
  HardwareSvdConfig Cfg;
  Cfg.Cache.NumCpus = Cpus;
  Cfg.Cache.LineWords = 1;
  Cfg.Cache.Sets = 256;
  Cfg.Cache.Ways = 4;
  return Cfg;
}

struct HwRun {
  std::vector<Violation> Violations;
  std::vector<CuLogEntry> Log;
  uint64_t MetadataEvictions = 0;
  cache::CacheStats Cache;
};

HwRun runHw(const isa::Program &P, const std::vector<isa::ThreadId> &S,
            HardwareSvdConfig Cfg, uint64_t Seed = 1) {
  MachineConfig MC;
  MC.SchedSeed = Seed;
  Machine M(P, MC);
  HardwareSvd Hw(P, Cfg);
  M.addObserver(&Hw);
  if (!S.empty()) {
    M.setReplaySchedule(S);
    M.run();
    M.clearReplaySchedule();
  }
  M.run();
  HwRun R;
  R.Violations = Hw.violations();
  R.Log = Hw.cuLog();
  R.MetadataEvictions = Hw.metadataEvictions();
  R.Cache = Hw.cacheStats();
  return R;
}

} // namespace

TEST(HardwareSvd, DetectsInterleavedRmw) {
  isa::Program P = assembleOrDie(RmwSource);
  HwRun R = runHw(P, sched({{0, 1}, {1, 4}, {0, 3}}), bigCacheConfig(2));
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].Tid, 0u);
  EXPECT_EQ(R.Violations[0].Pc, 2u);
  EXPECT_EQ(R.Violations[0].OtherTid, 1u);
}

TEST(HardwareSvd, SilentOnSerializedRmw) {
  isa::Program P = assembleOrDie(RmwSource);
  HwRun R = runHw(P, sched({{0, 4}, {1, 4}}), bigCacheConfig(2));
  EXPECT_TRUE(R.Violations.empty());
}

TEST(HardwareSvd, RemoteWriteOnTrueDepLogsAndEndsCu) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread a
  li r1, 5
  st r1, [@g]
  ld r2, [@g]
  addi r2, r2, 1
  st r2, [@g]
  halt
.thread b
  li r3, 9
  st r3, [@g]
  halt
)");
  HwRun R = runHw(P, sched({{0, 3}, {1, 3}, {0, 3}}), bigCacheConfig(2));
  EXPECT_TRUE(R.Violations.empty());
  ASSERT_EQ(R.Log.size(), 1u);
  EXPECT_EQ(R.Log[0].Pc, 2u);
  EXPECT_EQ(R.Log[0].RemotePc, 1u);
}

TEST(HardwareSvd, MatchesSoftwareOnBigCache) {
  // With an effectively infinite cache and word-size lines, hardware
  // SVD should agree with software SVD on whether each of a batch of
  // executions contains a violation.
  workloads::WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 30;
  P.WorkPadding = 20;
  P.TouchOneIn = 2;
  workloads::Workload W = workloads::apacheLog(P);
  int Agree = 0, Total = 0;
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    MachineConfig MC;
    MC.SchedSeed = Seed;
    MC.MinTimeslice = 1;
    MC.MaxTimeslice = 4;
    Machine M(W.Program, MC);
    OnlineSvd Sw(W.Program);
    HardwareSvdConfig HC = bigCacheConfig(5);
    HC.Cache.Sets = 1024;
    HardwareSvd Hw(W.Program, HC);
    M.addObserver(&Sw);
    M.addObserver(&Hw);
    M.run();
    ++Total;
    Agree += (Sw.violations().empty() == Hw.violations().empty());
  }
  EXPECT_EQ(Agree, Total);
}

TEST(HardwareSvd, TinyCacheLosesMetadata) {
  workloads::WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 30;
  workloads::Workload W = workloads::apacheLog(P);
  HardwareSvdConfig Tiny = bigCacheConfig(5);
  Tiny.Cache.Sets = 4;
  Tiny.Cache.Ways = 2;
  HwRun R = runHw(W.Program, {}, Tiny, 3);
  EXPECT_GT(R.MetadataEvictions, 0u);
  EXPECT_GT(R.Cache.Evictions, 0u);
}

TEST(HardwareSvd, WideLinesCauseFalseSharingReports) {
  // Two threads write adjacent words: silent with 1-word lines, a
  // false-sharing report with 4-word lines.
  isa::Program P = assembleOrDie(R"(
.global arr 2
.thread a
  ld r1, [@arr]
  addi r1, r1, 1
  st r1, [@arr]
  halt
.thread b
  li r3, 7
  st r3, [@arr+1]
  halt
)");
  auto S = sched({{0, 1}, {1, 3}, {0, 3}});
  HwRun Word = runHw(P, S, bigCacheConfig(2));
  EXPECT_TRUE(Word.Violations.empty());

  HardwareSvdConfig Wide = bigCacheConfig(2);
  Wide.Cache.LineWords = 4;
  HwRun Line = runHw(P, S, Wide);
  EXPECT_EQ(Line.Violations.size(), 1u);
}

TEST(HardwareSvd, CoherenceTrafficIsCounted) {
  isa::Program P = assembleOrDie(RmwSource);
  HwRun R = runHw(P, sched({{0, 1}, {1, 4}, {0, 3}}), bigCacheConfig(2));
  EXPECT_GT(R.Cache.Accesses, 0u);
  EXPECT_GT(R.Cache.Invalidations + R.Cache.Downgrades, 0u);
}

TEST(HardwareSvd, MetadataBitsAccounting) {
  isa::Program P = assembleOrDie(RmwSource);
  HardwareSvd Hw(P, bigCacheConfig(2));
  EXPECT_GT(Hw.metadataBits(), 0u);
}

TEST(HardwareSvd, BenignLockedCounterStaysSilent) {
  isa::Program P = assembleOrDie(R"(
.global tot
.lock m
.thread locker
  li r5, 2
loop:
  lock @m
  ld r1, [@tot]
  addi r1, r1, 1
  st r1, [@tot]
  unlock @m
  addi r5, r5, -1
  bnez r5, loop
  halt
.thread reader
  ld r2, [@tot]
  beqz r2, iszero
  li r3, 1
  jmp out
iszero:
  li r3, 0
out:
  print r3
  halt
)");
  HwRun R = runHw(P, sched({{0, 8}, {1, 1}, {0, 8}, {1, 5}}),
                  bigCacheConfig(2));
  EXPECT_TRUE(R.Violations.empty());
}
