# Runs a tool and compares its stdout byte-for-byte against a golden
# file, pinning the default output of the CLI front ends across
# refactors. Invoke with:
#
#   cmake -DCMD="<exe> <args...>" -DGOLDEN=<file> -DEXPECT_RC=<n> \
#         -P RunAndCompare.cmake
#
# The caller sets WORKING_DIRECTORY so relative paths inside the golden
# output (file names in diagnostics) reproduce.

separate_arguments(CMD_LIST UNIX_COMMAND "${CMD}")
execute_process(COMMAND ${CMD_LIST}
                OUTPUT_VARIABLE ACTUAL
                RESULT_VARIABLE RC)

if(NOT RC EQUAL "${EXPECT_RC}")
  message(FATAL_ERROR "'${CMD}' exited ${RC}, expected ${EXPECT_RC}")
endif()

file(READ "${GOLDEN}" WANT)
if(NOT ACTUAL STREQUAL WANT)
  message(FATAL_ERROR "'${CMD}' output drifted from ${GOLDEN}:\n"
                      "---- actual ----\n${ACTUAL}\n"
                      "---- golden ----\n${WANT}")
endif()
