//===- tests/RelatedDetectorsTest.cpp - Atomizer / stale-value tests -------===//

#include "TestUtil.h"
#include "race/Atomizer.h"
#include "race/StaleValue.h"
#include "svd/OnlineSvd.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::race;
using isa::assembleOrDie;
using testutil::sched;
using vm::Machine;
using vm::MachineConfig;

namespace {

template <typename Detector>
std::vector<detect::Violation>
runDetector(const isa::Program &P, const std::vector<isa::ThreadId> &S,
            uint64_t Seed = 1) {
  MachineConfig MC;
  MC.SchedSeed = Seed;
  Machine M(P, MC);
  Detector D(P);
  M.addObserver(&D);
  if (!S.empty()) {
    M.setReplaySchedule(S);
    M.run();
    M.clearReplaySchedule();
  }
  M.run();
  return D.reports();
}

/// Figure 1 shape: a locked counter plus an unlocked benign reader.
/// The counter accesses are racy (the reader takes no lock), so the
/// critical section contains two non-movers.
const char *BenignRacyCounter = R"(
.global tot
.lock m
.thread locker
  li r5, 3
loop:
  lock @m
  ld r1, [@tot]
  addi r1, r1, 1
  st r1, [@tot]
  unlock @m
  addi r5, r5, -1
  bnez r5, loop
  halt
.thread reader
  li r6, 3
rloop:
  ld r2, [@tot]
  addi r6, r6, -1
  bnez r6, rloop
  halt
)";

} // namespace

//===----------------------------------------------------------------------===//
// Atomizer.
//===----------------------------------------------------------------------===//

TEST(Atomizer, ProperlyLockedCounterIsAtomic) {
  isa::Program P = assembleOrDie(R"(
.global tot
.lock m
.thread t x2
  li r5, 5
loop:
  lock @m
  ld r1, [@tot]
  addi r1, r1, 1
  st r1, [@tot]
  unlock @m
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  // All tot accesses are consistently locked: both-movers, no report.
  for (uint64_t Seed = 1; Seed <= 5; ++Seed)
    EXPECT_TRUE(runDetector<AtomizerDetector>(P, {}, Seed).empty())
        << "seed " << Seed;
}

TEST(Atomizer, RacyCriticalSectionViolatesReduction) {
  isa::Program P = assembleOrDie(BenignRacyCounter);
  // Run the reader first so tot is already write-shared-racy when the
  // locker's later critical sections execute.
  std::vector<detect::Violation> R =
      runDetector<AtomizerDetector>(P, {}, 3);
  // The CS does ld tot (non-mover, commit) then st tot (second
  // non-mover): a reduction violation — although the race is benign
  // and the execution serializable (SVD stays silent; see the
  // differential test below).
  EXPECT_FALSE(R.empty());
  for (const detect::Violation &V : R)
    EXPECT_EQ(V.Tid, V.OtherTid) << "atomizer reports are thread-local";
}

TEST(Atomizer, SingleRacyAccessInBlockIsTheCommitPoint) {
  // One racy access per CS is fine (it is the commit point).
  isa::Program P = assembleOrDie(R"(
.global g
.lock m
.thread w
  lock @m
  li r1, 5
  st r1, [@g]        ; single racy access: allowed
  unlock @m
  halt
.thread r
  ld r2, [@g]        ; makes g racy
  halt
)");
  EXPECT_TRUE(
      runDetector<AtomizerDetector>(P, sched({{1, 2}, {0, 5}})).empty());
}

TEST(Atomizer, AcquireAfterCommitPointViolates) {
  // g must pass through Eraser's Exclusive/Shared phases before it is
  // considered racy; w's second critical section then commits on the
  // racy read and the nested acquire violates reduction.
  isa::Program P = assembleOrDie(R"(
.global g
.lock m1
.lock m2
.thread w
  lock @m1
  ld r1, [@g]        ; Shared, lockset {m1}
  unlock @m1
  lock @m1
  ld r1, [@g]        ; now racy: commit point
  lock @m2           ; right-mover after commit: violation
  unlock @m2
  unlock @m1
  halt
.thread r
  li r2, 1
  st r2, [@g]        ; Exclusive
  li r2, 2
  st r2, [@g]        ; unlocked write empties the lockset (racy)
  halt
)");
  std::vector<detect::Violation> R = runDetector<AtomizerDetector>(
      P, sched({{1, 2}, {0, 3}, {1, 3}, {0, 6}}));
  EXPECT_FALSE(R.empty());
}

TEST(Atomizer, CountsBlocks) {
  isa::Program P = assembleOrDie(R"(
.lock m
.thread t
  li r5, 4
loop:
  lock @m
  unlock @m
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  Machine M(P);
  AtomizerDetector D(P);
  M.addObserver(&D);
  M.run();
  EXPECT_EQ(D.blocksChecked(), 4u);
  EXPECT_TRUE(D.reports().empty());
}

//===----------------------------------------------------------------------===//
// Stale-value detector.
//===----------------------------------------------------------------------===//

TEST(StaleValue, FlagsValueUsedAfterCriticalSection) {
  // The PgSQL read-then-publish shape: price is read under the lock
  // but consumed after the unlock.
  isa::Program P = assembleOrDie(R"(
.global price
.local out
.lock m
.thread a
  lock @m
  ld r1, [@price]    ; protected read of shared data
  unlock @m
  muli r2, r1, 3     ; stale use (pc 3)
  st r2, [@out]
  halt
.thread b
  lock @m
  ld r3, [@price]
  addi r3, r3, 1
  st r3, [@price]
  unlock @m
  halt
)");
  // b touches price first so it is shared by the time a reads it.
  std::vector<detect::Violation> R =
      runDetector<StaleValueDetector>(P, sched({{1, 6}, {0, 6}}));
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Pc, 3u);      // the muli
  EXPECT_EQ(R[0].OtherPc, 1u); // the protected load
  EXPECT_EQ(R[0].Address, P.addressOf("price"));
}

TEST(StaleValue, SilentWhenValueConsumedInsideCs) {
  isa::Program P = assembleOrDie(R"(
.global price
.local out
.lock m
.thread a
  lock @m
  ld r1, [@price]
  muli r2, r1, 3     ; consumed inside the CS
  st r2, [@out]
  unlock @m
  halt
.thread b
  lock @m
  li r3, 7
  st r3, [@price]
  unlock @m
  halt
)");
  EXPECT_TRUE(
      runDetector<StaleValueDetector>(P, sched({{1, 5}, {0, 6}})).empty());
}

TEST(StaleValue, SilentForUnsharedData) {
  isa::Program P = assembleOrDie(R"(
.global solo
.lock m
.thread a
  lock @m
  ld r1, [@solo]     ; nobody else touches solo
  unlock @m
  muli r2, r1, 3
  halt
)");
  EXPECT_TRUE(runDetector<StaleValueDetector>(P, {}).empty());
}

TEST(StaleValue, SilentForUnlockedReads) {
  // Reads outside any CS are not "protected reads" — the detector only
  // tracks values that crossed a critical-section boundary.
  isa::Program P = assembleOrDie(R"(
.global g
.thread a
  ld r1, [@g]
  muli r2, r1, 3
  halt
.thread b
  li r3, 1
  st r3, [@g]
  halt
)");
  EXPECT_TRUE(
      runDetector<StaleValueDetector>(P, sched({{1, 3}, {0, 3}})).empty());
}

TEST(StaleValue, TaintPropagatesThroughArithmetic) {
  isa::Program P = assembleOrDie(R"(
.global price
.local out
.lock m
.thread a
  lock @m
  ld r1, [@price]
  unlock @m
  addi r2, r1, 1     ; taint flows r1 -> r2 -> r3 (warn at first use)
  halt
.thread b
  lock @m
  li r3, 7
  st r3, [@price]
  unlock @m
  halt
)");
  std::vector<detect::Violation> R =
      runDetector<StaleValueDetector>(P, sched({{1, 5}, {0, 4}}));
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].OtherPc, 1u);
}

TEST(StaleValue, OneWarningPerTaintedValue) {
  isa::Program P = assembleOrDie(R"(
.global price
.local out
.lock m
.thread a
  lock @m
  ld r1, [@price]
  unlock @m
  addi r2, r1, 1     ; first stale use: warn
  addi r3, r1, 2     ; same tainted r1: no second warning
  halt
.thread b
  lock @m
  li r3, 7
  st r3, [@price]
  unlock @m
  halt
)");
  std::vector<detect::Violation> R =
      runDetector<StaleValueDetector>(P, sched({{1, 5}, {0, 5}}));
  EXPECT_EQ(R.size(), 1u);
}

//===----------------------------------------------------------------------===//
// The Section 8 differential: the same benign-race execution, four
// verdicts.
//===----------------------------------------------------------------------===//

TEST(RelatedWork, DetectorFamiliesDisagreeOnBenignRace) {
  isa::Program P = assembleOrDie(BenignRacyCounter);
  MachineConfig MC;
  MC.SchedSeed = 3;
  Machine M(P, MC);
  detect::OnlineSvd Svd(P);
  AtomizerDetector Atom(P);
  M.addObserver(&Svd);
  M.addObserver(&Atom);
  M.run();
  // SVD: the execution is serializable — silent.
  EXPECT_TRUE(Svd.violations().empty());
  // Atomizer: the racy accesses make the CS irreducible — reports,
  // even though nothing went wrong in this execution. Exactly the
  // "serializability versus atomicity" contrast of Section 8.
  EXPECT_FALSE(Atom.reports().empty());
}
