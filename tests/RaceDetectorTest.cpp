//===- tests/RaceDetectorTest.cpp - FRD / frontier / lockset tests --------===//

#include "TestUtil.h"
#include "race/Frontier.h"
#include "race/HappensBefore.h"
#include "race/Lockset.h"
#include "svd/OnlineSvd.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::race;
using detect::Violation;
using isa::assembleOrDie;
using testutil::recordRun;
using testutil::recordWithPrefix;
using testutil::sched;
using vm::Machine;
using vm::MachineConfig;

namespace {

std::vector<Violation> hbRaces(const isa::Program &P,
                               const std::vector<isa::ThreadId> &Prefix,
                               uint64_t Seed = 1) {
  MachineConfig Cfg;
  Cfg.SchedSeed = Seed;
  Machine M(P, Cfg);
  HappensBeforeDetector D(P);
  M.addObserver(&D);
  if (!Prefix.empty()) {
    M.setReplaySchedule(Prefix);
    M.run();
    M.clearReplaySchedule();
  }
  M.run();
  return D.races();
}

std::vector<Violation>
locksetReports(const isa::Program &P,
               const std::vector<isa::ThreadId> &Prefix, uint64_t Seed = 1) {
  MachineConfig Cfg;
  Cfg.SchedSeed = Seed;
  Machine M(P, Cfg);
  LocksetDetector D(P);
  M.addObserver(&D);
  if (!Prefix.empty()) {
    M.setReplaySchedule(Prefix);
    M.run();
    M.clearReplaySchedule();
  }
  M.run();
  return D.reports();
}

const char *LockedCounterSource = R"(
.global counter
.lock m
.thread t x2
  li r5, 5
loop:
  lock @m
  ld r1, [@counter]
  addi r1, r1, 1
  st r1, [@counter]
  unlock @m
  addi r5, r5, -1
  bnez r5, loop
  halt
)";

const char *UnlockedCounterSource = R"(
.global counter
.thread t x2
  li r5, 5
loop:
  ld r1, [@counter]
  addi r1, r1, 1
  st r1, [@counter]
  addi r5, r5, -1
  bnez r5, loop
  halt
)";

} // namespace

//===----------------------------------------------------------------------===//
// Happens-before detector.
//===----------------------------------------------------------------------===//

TEST(HappensBefore, SilentOnLockedCounter) {
  isa::Program P = assembleOrDie(LockedCounterSource);
  for (uint64_t Seed = 1; Seed <= 8; ++Seed)
    EXPECT_TRUE(hbRaces(P, {}, Seed).empty()) << "seed " << Seed;
}

TEST(HappensBefore, ReportsUnlockedCounter) {
  isa::Program P = assembleOrDie(UnlockedCounterSource);
  size_t Total = 0;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed)
    Total += hbRaces(P, {}, Seed).size();
  EXPECT_GT(Total, 0u);
}

TEST(HappensBefore, LockOrderingSuppressesRace) {
  isa::Program P = assembleOrDie(R"(
.global g
.lock m
.thread writer
  li r1, 1
  lock @m
  st r1, [@g]
  unlock @m
  halt
.thread reader
  lock @m
  ld r2, [@g]
  unlock @m
  halt
)");
  // writer completes its critical section before the reader enters.
  EXPECT_TRUE(hbRaces(P, sched({{0, 5}, {1, 4}})).empty());
}

TEST(HappensBefore, MissingLockOnOneSideRaces) {
  isa::Program P = assembleOrDie(R"(
.global g
.lock m
.thread writer
  li r1, 1
  lock @m
  st r1, [@g]
  unlock @m
  halt
.thread reader
  ld r2, [@g]      ; no lock: unordered with the write
  halt
)");
  std::vector<Violation> R = hbRaces(P, sched({{0, 5}, {1, 2}}));
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Tid, 1u);
  EXPECT_EQ(R[0].OtherTid, 0u);
  EXPECT_EQ(R[0].Address, P.addressOf("g"));
}

TEST(HappensBefore, WriteWriteRaceDetected) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread a
  li r1, 1
  st r1, [@g]
  halt
.thread b
  li r2, 2
  st r2, [@g]
  halt
)");
  std::vector<Violation> R = hbRaces(P, sched({{0, 3}, {1, 3}}));
  ASSERT_EQ(R.size(), 1u);
}

TEST(HappensBefore, ReadWriteRaceDetected) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread a
  ld r1, [@g]
  halt
.thread b
  li r2, 2
  st r2, [@g]
  halt
)");
  std::vector<Violation> R = hbRaces(P, sched({{0, 2}, {1, 3}}));
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Tid, 1u); // the write completes the race
}

TEST(HappensBefore, SameThreadNeverRaces) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread t
  li r1, 1
  st r1, [@g]
  ld r2, [@g]
  st r2, [@g]
  halt
)");
  EXPECT_TRUE(hbRaces(P, {}).empty());
}

//===----------------------------------------------------------------------===//
// The paper's central differential: Figure 1's benign race.
// FRD reports it; SVD stays silent.
//===----------------------------------------------------------------------===//

TEST(Differential, BenignRaceSplitsTheDetectors) {
  isa::Program P = assembleOrDie(R"(
.global tot
.lock m
.thread locker
  li r5, 2
loop:
  lock @m
  ld r1, [@tot]
  addi r1, r1, 1
  st r1, [@tot]
  unlock @m
  addi r5, r5, -1
  bnez r5, loop
  halt
.thread reader
  ld r2, [@tot]
  beqz r2, iszero
  li r3, 1
  jmp out
iszero:
  li r3, 0
out:
  print r3
  halt
)");
  std::vector<isa::ThreadId> Schedule =
      sched({{0, 8}, {1, 1}, {0, 8}, {1, 5}});

  // FRD: the unsynchronized read races with the locked writes.
  std::vector<Violation> HB = hbRaces(P, Schedule);
  EXPECT_FALSE(HB.empty());

  // SVD: the execution is serializable, so no report.
  Machine M(P);
  detect::OnlineSvd Svd(P);
  M.addObserver(&Svd);
  M.setReplaySchedule(Schedule);
  M.run();
  M.clearReplaySchedule();
  M.run();
  EXPECT_TRUE(Svd.violations().empty());
}

//===----------------------------------------------------------------------===//
// Frontier races.
//===----------------------------------------------------------------------===//

TEST(Frontier, FindsTightestRaceOnly) {
  // a's write races with b's two reads, but only the first conflicting
  // pair is a frontier race; the second is ordered by the first.
  isa::Program P = assembleOrDie(R"(
.global g
.thread a
  li r1, 1
  st r1, [@g]
  halt
.thread b
  ld r2, [@g]
  ld r3, [@g]
  halt
)");
  trace::ProgramTrace T = recordWithPrefix(P, sched({{0, 3}, {1, 3}}));
  std::vector<FrontierRace> F = frontierRaces(T);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Pair.OtherTid, 0u);
  EXPECT_EQ(F[0].Pair.Tid, 1u);
}

TEST(Frontier, ConflictChainsSuppressOrderedPairs) {
  // t0 writes g then h; t1 reads h then g. The h-pair (st h -> ld h)
  // orders the g-pair transitively (st g -> st h -> ld h -> ld g), so
  // only the h-pair is a frontier race.
  isa::Program P = assembleOrDie(R"(
.global g
.global h
.thread a
  li r1, 1
  st r1, [@g]
  st r1, [@h]
  halt
.thread b
  ld r3, [@h]
  ld r2, [@g]
  halt
)");
  trace::ProgramTrace T = recordWithPrefix(P, sched({{0, 4}, {1, 3}}));
  std::vector<FrontierRace> F = frontierRaces(T);
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F[0].Pair.Address, P.addressOf("h"));
}

TEST(Frontier, ConcurrentPairsOnDistinctWordsBothReported) {
  // Same shape but t1 reads in the same order t0 wrote: the g-conflict
  // does not order the later h-pair, so both are frontier races.
  isa::Program P = assembleOrDie(R"(
.global g
.global h
.thread a
  li r1, 1
  st r1, [@g]
  st r1, [@h]
  halt
.thread b
  ld r2, [@g]
  ld r3, [@h]
  halt
)");
  trace::ProgramTrace T = recordWithPrefix(P, sched({{0, 4}, {1, 3}}));
  EXPECT_EQ(frontierRaces(T).size(), 2u);
}

TEST(Frontier, EmptyForSingleThread) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread t
  li r1, 1
  st r1, [@g]
  ld r2, [@g]
  halt
)");
  trace::ProgramTrace T = recordRun(P);
  EXPECT_TRUE(frontierRaces(T).empty());
}

//===----------------------------------------------------------------------===//
// Lockset (Eraser).
//===----------------------------------------------------------------------===//

TEST(Lockset, SilentOnConsistentLocking) {
  isa::Program P = assembleOrDie(LockedCounterSource);
  for (uint64_t Seed = 1; Seed <= 5; ++Seed)
    EXPECT_TRUE(locksetReports(P, {}, Seed).empty()) << "seed " << Seed;
}

TEST(Lockset, ReportsUnlockedSharedCounter) {
  isa::Program P = assembleOrDie(UnlockedCounterSource);
  // Lockset is schedule-insensitive: even a fully serialized run
  // reports the missing lock (its strength vs happens-before).
  std::vector<Violation> R =
      locksetReports(P, sched({{0, 26}, {1, 26}}));
  EXPECT_FALSE(R.empty());
}

TEST(Lockset, ExclusiveSingleThreadNeverReports) {
  isa::Program P = assembleOrDie(R"(
.global g
.thread t
  li r5, 5
loop:
  ld r1, [@g]
  addi r1, r1, 1
  st r1, [@g]
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  EXPECT_TRUE(locksetReports(P, {}).empty());
}

TEST(Lockset, DifferentLocksStillRace) {
  // Each thread consistently holds *a* lock, but not the same one. The
  // candidate set empties on thread a's second critical section (the
  // first exclusive phase is forgiven by Eraser's state machine).
  isa::Program P = assembleOrDie(R"(
.global g
.lock m1
.lock m2
.thread a
  li r5, 2
loop:
  lock @m1
  ld r1, [@g]
  addi r1, r1, 1
  st r1, [@g]
  unlock @m1
  addi r5, r5, -1
  bnez r5, loop
  halt
.thread b
  lock @m2
  ld r2, [@g]
  addi r2, r2, 1
  st r2, [@g]
  unlock @m2
  halt
)");
  // a's first CS (8 steps incl. li), b's whole CS (6), a's second CS.
  std::vector<Violation> R = locksetReports(P, sched({{0, 8}, {1, 6}, {0, 8}}));
  EXPECT_FALSE(R.empty());
}

TEST(Lockset, FirstSharingAccessIsForgiven) {
  // The classic Eraser false negative: initialization under one lock,
  // single later access under another — no report because the word
  // leaves Exclusive only at the second thread's access.
  isa::Program P = assembleOrDie(R"(
.global g
.lock m1
.lock m2
.thread a
  li r1, 1
  lock @m1
  st r1, [@g]
  unlock @m1
  halt
.thread b
  lock @m2
  ld r2, [@g]
  unlock @m2
  halt
)");
  EXPECT_TRUE(locksetReports(P, sched({{0, 5}, {1, 4}})).empty());
}

TEST(Lockset, ReadSharedStateDoesNotReport) {
  // Writer initializes exclusively; readers share read-only: no report.
  isa::Program P = assembleOrDie(R"(
.global g
.thread w
  li r1, 42
  st r1, [@g]
  halt
.thread r x2
  ld r2, [@g]
  halt
)");
  std::vector<Violation> R =
      locksetReports(P, sched({{0, 3}, {1, 2}, {2, 2}}));
  EXPECT_TRUE(R.empty());
}
