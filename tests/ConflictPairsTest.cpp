//===- tests/ConflictPairsTest.cpp - Conflict-pair enumeration tests ------===//

#include "analysis/ConflictPairs.h"
#include "isa/Assembler.h"

#include <gtest/gtest.h>

using namespace svd;
using namespace svd::analysis;
using isa::Program;

namespace {

Program asmProg(const std::string &Src) { return isa::assembleOrDie(Src); }

} // namespace

TEST(ConflictPairs, UnlockedSharedWritesConflict) {
  Program P = asmProg(R"(
.global x
.thread t x2
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  halt
)");
  ConflictPairs CP(P);
  // (ld0, st1), (st0, ld1), (st0, st1): every cross-thread pair with at
  // least one write; read-read does not conflict.
  ASSERT_EQ(CP.pairs().size(), 3u);
  for (const ConflictPair &Pr : CP.pairs()) {
    EXPECT_LT(Pr.A.Tid, Pr.B.Tid);
    EXPECT_TRUE(Pr.A.IsWrite || Pr.B.IsWrite);
  }
  // conflictsWith is symmetric over the pair list.
  EXPECT_EQ(CP.conflictsWith(0, 0).size(), 1u); // ld vs remote st
  EXPECT_EQ(CP.conflictsWith(0, 2).size(), 2u); // st vs remote ld + st
}

TEST(ConflictPairs, CommonMustLockOrdersThePair) {
  Program P = asmProg(R"(
.global x
.lock m
.thread t x2
  lock @m
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@x]
  unlock @m
  halt
)");
  ConflictPairs CP(P);
  EXPECT_TRUE(CP.pairs().empty());
}

TEST(ConflictPairs, LockOnOneSideOnlyStillConflicts) {
  // Thread a holds the lock, thread b does not: no *common* mutex, so
  // mutual exclusion orders nothing.
  Program P = asmProg(R"(
.global x
.lock m
.thread a
  lock @m
  ld r1, [@x]
  st r1, [@x]
  unlock @m
  halt
.thread b
  li r1, 7
  st r1, [@x]
  halt
)");
  ConflictPairs CP(P);
  EXPECT_FALSE(CP.pairs().empty());
}

TEST(ConflictPairs, ThreadLocalCopiesDoNotAlias) {
  // Each thread's .local copy occupies a disjoint interval; the escape
  // bounds prove the accesses never meet.
  Program P = asmProg(R"(
.local scratch 1
.thread t x2
  tid r1
  li r2, 5
  st r2, [r1+@scratch]
  halt
)");
  ConflictPairs CP(P);
  // The effective address is Tid-indexed, which the interval analysis
  // resolves per thread to disjoint singletons.
  EXPECT_TRUE(CP.pairs().empty());
}

TEST(ConflictPairs, CasCountsAsReadAndWrite) {
  Program P = asmProg(R"(
.global g
.thread a
  li r1, 0
  li r2, 1
  cas r3, r1, r2, [@g]
  halt
.thread b
  ld r1, [@g]
  halt
)");
  ConflictPairs CP(P);
  // Remote read vs local Cas: the Cas's write half makes it a conflict.
  ASSERT_EQ(CP.pairs().size(), 1u);
  EXPECT_TRUE(CP.pairs()[0].A.IsCas);
  EXPECT_TRUE(CP.pairs()[0].A.IsWrite);
  EXPECT_TRUE(CP.pairs()[0].A.IsRead);
  EXPECT_FALSE(CP.pairs()[0].B.IsWrite);
}

TEST(ConflictPairs, BlockGranularityMergesNeighbours) {
  // Disjoint words, but within one 2-word detector block: conflicting
  // at shift 1, disjoint at shift 0 (the false-sharing ablation).
  Program P = asmProg(R"(
.global arr 2
.thread a
  li r1, 1
  st r1, [@arr]
  halt
.thread b
  li r1, 2
  st r1, [@arr+1]
  halt
)");
  EXPECT_TRUE(ConflictPairs(P, 0).pairs().empty());
  EXPECT_EQ(ConflictPairs(P, 1).pairs().size(), 1u);
  EXPECT_EQ(ConflictPairs(P, 1).blockShift(), 1u);
}

TEST(ConflictPairs, MayHappenInParallelIsCrossThread) {
  EXPECT_FALSE(ConflictPairs::mayHappenInParallel(0, 0));
  EXPECT_TRUE(ConflictPairs::mayHappenInParallel(0, 1));
}
