# Runs two commands and requires byte-identical stdout and equal exit
# codes — the svd-bench determinism smoke (`--jobs 1` vs `--jobs N`).
# Invoke with:
#
#   cmake -DCMD_A="..." -DCMD_B="..." -P CompareRuns.cmake

separate_arguments(CMD_A_LIST UNIX_COMMAND "${CMD_A}")
separate_arguments(CMD_B_LIST UNIX_COMMAND "${CMD_B}")

execute_process(COMMAND ${CMD_A_LIST}
                OUTPUT_VARIABLE OUT_A
                RESULT_VARIABLE RC_A)
execute_process(COMMAND ${CMD_B_LIST}
                OUTPUT_VARIABLE OUT_B
                RESULT_VARIABLE RC_B)

if(NOT RC_A EQUAL 0)
  message(FATAL_ERROR "'${CMD_A}' exited ${RC_A}")
endif()
if(NOT RC_B EQUAL 0)
  message(FATAL_ERROR "'${CMD_B}' exited ${RC_B}")
endif()
if(NOT OUT_A STREQUAL OUT_B)
  message(FATAL_ERROR "outputs differ between\n  ${CMD_A}\nand\n  ${CMD_B}:\n"
                      "---- A ----\n${OUT_A}\n---- B ----\n${OUT_B}")
endif()
