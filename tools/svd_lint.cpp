//===- tools/svd_lint.cpp - Static analysis front end ---------------------===//
//
// Assembles one or more programs and runs the static passes over every
// thread, printing diagnostics with instruction locations:
//
//   svd-lint FILE.asm... [--dead-stores] [--no-uninit] [--no-lockset]
//            [--escape] [--prove] [--block-shift N] [--json]
//
// Exit status: 0 when every file is clean, 1 when any diagnostic fired,
// 2 on usage or assembly errors. --escape additionally prints the
// access-classification table the detectors consume (which loads/stores
// are provably thread-local, lock-protected, or possibly shared).
// --prove runs the whole-program atomicity proofs (DESIGN.md section
// 12): it adds the inconsistent-lock / non-two-phase / lock-order-cycle
// diagnostic families and reports how many static CUs are proven
// serializable (and how many access sites the detectors may prune).
// --json emits one JSON document per file instead of text (schema in
// DESIGN.md section 8; shared with svd-predict --json); with --prove
// the document gains a "proof" object.
//
//===----------------------------------------------------------------------===//

#include "analysis/AccessTable.h"
#include "analysis/AtomicProof.h"
#include "analysis/Lint.h"
#include "isa/Assembler.h"
#include "support/Cli.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace svd;

namespace {

const char *Usage =
    "usage: svd-lint FILE.asm... [options]\n"
    "  --dead-stores    also warn about registers written but never read\n"
    "  --no-uninit      disable read-before-write warnings\n"
    "  --no-lockset     disable lock imbalance / double-acquire checks\n"
    "  --escape         print the static access classification per access\n"
    "  --prove          run the static CU atomicity proofs (adds the\n"
    "                   inconsistent-lock / non-two-phase / lock-order-cycle\n"
    "                   families and a proven-CU summary)\n"
    "  --block-shift N  classify/prove at 2^N-word block granularity\n"
    "  --json           emit one JSON document per file instead of text\n";

struct Options {
  std::vector<std::string> Files;
  analysis::LintOptions Lint;
  bool Escape = false;
  bool Json = false;
  uint32_t BlockShift = 0;
};

bool parseArgs(int Argc, char **Argv, Options &O) {
  support::ArgParser P(Usage);
  P.flag("--dead-stores", &O.Lint.DeadWrites);
  P.flag("--dead-writes", &O.Lint.DeadWrites); // legacy alias
  P.flag("--no-uninit", &O.Lint.UninitReads, false);
  P.flag("--no-lockset", &O.Lint.Lockset, false);
  P.flag("--escape", &O.Escape);
  P.flag("--prove", &O.Lint.Prove);
  P.flag("--json", &O.Json);
  P.value("--block-shift", &O.BlockShift);
  if (!P.parse(Argc, Argv))
    return false;
  O.Lint.BlockShift = O.BlockShift;
  O.Files = P.positional();
  return !O.Files.empty();
}

void printEscapeTable(const isa::Program &P, uint32_t BlockShift) {
  analysis::AccessTable Table = analysis::buildAccessTable(P, BlockShift);
  std::printf("access classification (block shift %u): %llu local, "
              "%llu locked, %llu shared\n",
              BlockShift,
              static_cast<unsigned long long>(analysis::countAccessSites(
                  P, Table, analysis::AccessClass::ThreadLocal)),
              static_cast<unsigned long long>(analysis::countAccessSites(
                  P, Table, analysis::AccessClass::LockProtected)),
              static_cast<unsigned long long>(analysis::countAccessSites(
                  P, Table, analysis::AccessClass::PossiblyShared)));
  for (isa::ThreadId Tid = 0; Tid < P.numThreads(); ++Tid) {
    const std::vector<isa::Instruction> &Code = P.Threads[Tid].Code;
    for (uint32_t Pc = 0; Pc < Code.size(); ++Pc) {
      if (!isa::isMemoryAccess(Code[Pc].Op))
        continue;
      std::printf("  thread '%s' pc %u (line %u): %-6s %s\n",
                  P.Threads[Tid].Name.c_str(), Pc, Code[Pc].Line,
                  analysis::accessClassName(Table.classify(Tid, Pc)),
                  isa::opcodeName(Code[Pc].Op));
    }
  }
}

/// Lints one file. Returns 0 (clean), 1 (diagnostics), or 2 (bad input).
int lintFile(const std::string &File, const Options &O) {
  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
    return 2;
  }
  std::ostringstream SS;
  SS << In.rdbuf();

  isa::Program P;
  std::vector<isa::AsmError> Errors;
  if (!isa::assembleProgram(SS.str(), P, Errors)) {
    for (const isa::AsmError &E : Errors)
      std::fprintf(stderr, "%s:%u: error: %s\n", File.c_str(), E.Line,
                   E.Message.c_str());
    return 2;
  }

  std::vector<analysis::LintDiag> Diags = analysis::lintProgram(P, O.Lint);

  // The proof summary (re)runs proveAtomicCus; lintProgram already did
  // once for the diagnostics, but programs are tiny and the CLI is cold
  // anyway — simpler than widening the lint API to return both.
  analysis::CuProofs Proofs;
  if (O.Lint.Prove) {
    analysis::AccessTableOptions AO;
    AO.BlockShift = O.BlockShift;
    Proofs = analysis::proveAtomicCus(P, AO);
  }

  if (O.Json) {
    std::string J = analysis::lintDiagsToJson(P, File, Diags);
    if (O.Lint.Prove) {
      // Splice a "proof" object before the document's closing brace so
      // the --prove-less schema stays byte-identical.
      J.pop_back();
      J += support::formatString(
          ",\"proof\":{\"proven_cus\":%zu,\"prunable_sites\":%llu}}",
          Proofs.proven().size(),
          static_cast<unsigned long long>(Proofs.prunableSites()));
    }
    std::printf("%s\n", J.c_str());
    return Diags.empty() ? 0 : 1;
  }
  for (const analysis::LintDiag &D : Diags)
    std::printf("%s: %s\n", File.c_str(),
                analysis::formatLintDiag(P, D).c_str());
  std::printf("%s: %zu diagnostic%s\n", File.c_str(), Diags.size(),
              Diags.size() == 1 ? "" : "s");
  if (O.Lint.Prove)
    std::printf("%s: proof: %zu proven CU%s, %llu prunable access site%s\n",
                File.c_str(), Proofs.proven().size(),
                Proofs.proven().size() == 1 ? "" : "s",
                static_cast<unsigned long long>(Proofs.prunableSites()),
                Proofs.prunableSites() == 1 ? "" : "s");
  if (O.Escape)
    printEscapeTable(P, O.BlockShift);
  return Diags.empty() ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    std::fputs(Usage, stderr);
    return support::ExitUsage;
  }
  int Status = support::ExitClean;
  for (const std::string &File : O.Files)
    Status = std::max(Status, lintFile(File, O));
  return Status;
}
