//===- tools/svd_predict.cpp - Predict-and-confirm front end --------------===//
//
// Assembles one or more programs, statically predicts serializability
// violations (static CU inference + conflict pairs + pattern
// enumeration), then tries to confirm every prediction by driving the
// VM with a directed schedule. By default only *confirmed* violations
// are printed — the zero-unconfirmed-noise contract; --all also lists
// the predictions no directed run could witness.
//
//   svd-predict FILE.asm... [--all] [--json] [--block-shift N]
//               [--max-attempts N] [--max-steps N] [--seed N]
//
// Exit status: 0 when no prediction of any file confirmed, 1 when at
// least one confirmed, 2 on usage or assembly errors.
//
//===----------------------------------------------------------------------===//

#include "analysis/Predict.h"
#include "isa/Assembler.h"
#include "predict/Confirm.h"
#include "support/Cli.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace svd;

namespace {

const char *Usage =
    "usage: svd-predict FILE.asm... [options]\n"
    "  --all            also print predictions that did not confirm\n"
    "  --json           emit one JSON document per file instead of text\n"
    "  --block-shift N  detector block granularity 2^N words (default 0)\n"
    "  --max-attempts N directed runs per prediction (default 3)\n"
    "  --max-steps N    step budget per run (default 200000)\n"
    "  --seed N         scheduler seed of the undirected run tails\n";

struct Options {
  std::vector<std::string> Files;
  bool All = false;
  bool Json = false;
  analysis::PredictOptions Predict;
  predict::ConfirmOptions Confirm;
};

bool parseArgs(int Argc, char **Argv, Options &O) {
  support::ArgParser P(Usage);
  P.flag("--all", &O.All);
  P.flag("--json", &O.Json);
  P.valueFn("--block-shift", [&O](uint64_t V) {
    O.Predict.BlockShift = static_cast<uint32_t>(V);
    O.Confirm.BlockShift = static_cast<uint32_t>(V);
  });
  P.value("--max-attempts", &O.Confirm.MaxOccurrences);
  P.value("--max-steps", &O.Confirm.MaxStepsPerRun);
  P.value("--seed", &O.Confirm.SchedSeed);
  if (!P.parse(Argc, Argv))
    return false;
  O.Files = P.positional();
  return !O.Files.empty();
}

/// Analyzes one file. Returns 0 (nothing confirmed), 1 (confirmed
/// violations), or 2 (bad input).
int predictFile(const std::string &File, const Options &O) {
  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
    return 2;
  }
  std::ostringstream SS;
  SS << In.rdbuf();

  isa::Program P;
  std::vector<isa::AsmError> Errors;
  if (!isa::assembleProgram(SS.str(), P, Errors)) {
    for (const isa::AsmError &E : Errors)
      std::fprintf(stderr, "%s:%u: error: %s\n", File.c_str(), E.Line,
                   E.Message.c_str());
    return 2;
  }

  predict::PredictReport Rep =
      predict::predictAndConfirm(P, O.Predict, O.Confirm);

  if (O.Json) {
    std::printf("%s\n", predict::predictReportToJson(P, Rep).c_str());
    return Rep.numConfirmed() ? 1 : 0;
  }

  for (size_t I = 0; I < Rep.Predictions.size(); ++I) {
    const analysis::Prediction &Pr = Rep.Predictions[I];
    const predict::ConfirmResult &R = Rep.Results[I];
    if (R.confirmed()) {
      std::printf("%s: confirmed: %s\n", File.c_str(),
                  analysis::formatPrediction(P, Pr).c_str());
      std::printf("%s:   evidence (occurrence %u): %s\n", File.c_str(),
                  R.Occurrence, R.Detail.c_str());
    } else if (O.All) {
      std::printf("%s: unconfirmed: %s\n", File.c_str(),
                  analysis::formatPrediction(P, Pr).c_str());
    }
  }
  std::printf("%s: %zu predicted, %zu confirmed (%llu directed runs)\n",
              File.c_str(), Rep.Predictions.size(), Rep.numConfirmed(),
              static_cast<unsigned long long>(Rep.DirectedRuns));
  return Rep.numConfirmed() ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    std::fputs(Usage, stderr);
    return support::ExitUsage;
  }
  int Status = support::ExitClean;
  for (const std::string &File : O.Files)
    Status = std::max(Status, predictFile(File, O));
  return Status;
}
