//===- tools/svd_bench.cpp - Parallel benchmark suite driver --------------===//
//
// Runs the paper-table suites (harness/Suites.h) behind one front end,
// fanning execution samples across a thread pool:
//
//   svd-bench --suite NAME [--jobs N] [--seeds N] [--json]
//   svd-bench --list
//
// Output is bit-identical for every --jobs value (the runner collects
// samples in submission order), and --json output carries no timing or
// thread-count fields, so `--jobs 1` and `--jobs N` diff clean.
//
// Exit status: 0 on success, 2 on usage errors or an unknown suite.
//
//===----------------------------------------------------------------------===//

#include "harness/Suites.h"
#include "support/Cli.h"

#include <cstdio>
#include <string>

using namespace svd;

namespace {

const char *Usage =
    "usage: svd-bench --suite NAME [options]\n"
    "       svd-bench --list\n"
    "  --suite NAME  suite to run (see --list)\n"
    "  --jobs N      worker threads for the sample fan-out\n"
    "                (default 1; 0 = all hardware threads)\n"
    "  --seeds N     seeds per table row (default: the suite's\n"
    "                paper-default count)\n"
    "  --json        emit a JSON document instead of the text tables\n"
    "  --list        list the available suites\n";

} // namespace

int main(int Argc, char **Argv) {
  std::string SuiteName;
  bool List = false;
  harness::SuiteOptions O;
  uint32_t Jobs = 1, Seeds = 0;

  support::ArgParser P(Usage);
  P.value("--suite", &SuiteName);
  P.value("--jobs", &Jobs);
  P.value("--seeds", &Seeds);
  P.flag("--json", &O.Json);
  P.flag("--list", &List);
  if (!P.parse(Argc, Argv) || !P.positional().empty())
    return P.usageError();

  if (List) {
    for (const harness::Suite &S : harness::suites())
      std::printf("%-8s %s\n", S.Name, S.Description);
    return support::ExitClean;
  }

  if (SuiteName.empty())
    return P.usageError();
  const harness::Suite *S = harness::findSuite(SuiteName);
  if (!S) {
    std::fprintf(stderr, "unknown suite '%s'\n", SuiteName.c_str());
    return P.usageError();
  }

  O.Jobs = Jobs;
  O.Seeds = Seeds;
  return S->Run(O);
}
