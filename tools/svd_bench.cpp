//===- tools/svd_bench.cpp - Parallel benchmark suite driver --------------===//
//
// Runs the paper-table suites (harness/Suites.h) behind one front end,
// fanning execution samples across a thread pool:
//
//   svd-bench --suite NAME [--jobs N] [--seeds N] [--json]
//             [--metrics-json FILE] [--trace-out FILE]
//   svd-bench --list
//
// Output is bit-identical for every --jobs value (the runner collects
// samples in submission order), and --json output carries no timing or
// thread-count fields, so `--jobs 1` and `--jobs N` diff clean. The
// same invariant holds for the "counters" section of --metrics-json;
// its "timings" section and the whole --trace-out file are wall-clock
// and excluded from comparisons (DESIGN.md section 10).
//
// Exit status: 0 on success, 2 on usage errors, an unknown suite, or an
// unwritable output file.
//
//===----------------------------------------------------------------------===//

#include "harness/Suites.h"
#include "obs/ChromeTrace.h"
#include "obs/Obs.h"
#include "support/Cli.h"
#include "support/Error.h"
#include "support/Json.h"

#include <cstdio>
#include <string>

using namespace svd;

namespace {

const char *Usage =
    "usage: svd-bench --suite NAME [options]\n"
    "       svd-bench --list\n"
    "  --suite NAME         suite to run (see --list)\n"
    "  --jobs N             worker threads for the sample fan-out\n"
    "                       (default 1; 0 = all hardware threads)\n"
    "  --seeds N            seeds per table row (default: the suite's\n"
    "                       paper-default count)\n"
    "  --json               emit a JSON document instead of the text tables\n"
    "  --perf               table1/shadow: add a performance section\n"
    "                       (insts/s under OnlineSvd, plus deterministic\n"
    "                       event / pruned-event / shadow-page counts)\n"
    "  --translate          execute samples through the decode-once\n"
    "                       translation cache (vm/Translate.h); outputs\n"
    "                       are bit-identical, and --perf additionally\n"
    "                       reports the translated instruction rates\n"
    "  --metrics-json FILE  write the obs registry (deterministic counters\n"
    "                       + timing stats) as svd-metrics-v1 JSON\n"
    "  --trace-out FILE     write a Chrome trace_event JSON of the run\n"
    "                       (open in chrome://tracing or Perfetto)\n"
    "  --list               list the available suites\n";

/// Writes \p Content to \p Path after asserting it is valid JSON (both
/// exporters promise well-formed documents; a failure here is a bug,
/// not user error). Returns false when the file cannot be written.
bool writeJsonFile(const std::string &Path, const std::string &Content) {
  std::string Err;
  if (!support::jsonValidate(Content, &Err))
    support::fatalError("internal error: emitted invalid JSON for '" + Path +
                        "': " + Err);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "cannot write '%s'\n", Path.c_str());
    return false;
  }
  std::fwrite(Content.data(), 1, Content.size(), F);
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SuiteName, MetricsPath, TracePath;
  bool List = false;
  harness::SuiteOptions O;
  uint32_t Jobs = 1, Seeds = 0;

  support::ArgParser P(Usage);
  P.value("--suite", &SuiteName);
  P.value("--jobs", &Jobs);
  P.value("--seeds", &Seeds);
  P.flag("--json", &O.Json);
  P.flag("--perf", &O.Perf);
  P.flag("--translate", &O.Translate);
  P.flag("--list", &List);
  P.value("--metrics-json", &MetricsPath);
  P.value("--trace-out", &TracePath);
  if (!P.parse(Argc, Argv) || !P.positional().empty())
    return P.usageError();

  if (List) {
    for (const harness::Suite &S : harness::suites())
      std::printf("%-8s %s\n", S.Name, S.Description);
    return support::ExitClean;
  }

  if (SuiteName.empty())
    return P.usageError();
  const harness::Suite *S = harness::findSuite(SuiteName);
  if (!S) {
    std::fprintf(stderr, "unknown suite '%s'\n", SuiteName.c_str());
    return P.usageError();
  }

  obs::Registry Registry;
  obs::TraceCollector Trace;
  O.Jobs = Jobs;
  O.Seeds = Seeds;
  if (!MetricsPath.empty())
    O.Obs = &Registry;
  if (!TracePath.empty())
    O.Trace = &Trace;

  int Rc = S->Run(O);

  if (!MetricsPath.empty() &&
      !writeJsonFile(MetricsPath, obs::metricsJson(Registry)))
    return support::ExitUsage;
  if (!TracePath.empty() &&
      !writeJsonFile(TracePath, Trace.chromeTraceJson()))
    return support::ExitUsage;
  return Rc;
}
