//===- tools/bench_diff.cpp - Compare perf-bench JSON baselines -----------===//
//
// Compares two `svd-bench --suite table1 --perf --json` documents —
// typically the committed BENCH_table1.json baseline against a fresh
// run — field by field:
//
//   svd-bench-diff BASELINE.json CURRENT.json
//
// Every field in a row is deterministic (a pure function of the
// workload and the fixed perf seed) except the wall-clock rates.
// Deterministic fields must match byte-for-byte: row names, order and
// count, threads, static_instrs, dynamic_instrs, known_bug, events,
// pruned_events, filtered_events, proven_cus and pruned_pct. Any
// *_per_sec field (insts_per_sec, translate_insts_per_sec, the serve
// suite's events_per_sec) is advisory — its drift is printed but never
// fails the diff (CI machines differ; the committed number is a point
// of reference, not a contract).
//
// Exit status: 0 when the deterministic fields match, 1 when they
// drifted, 2 on usage errors or malformed input.
//
//===----------------------------------------------------------------------===//

#include "support/Cli.h"
#include "support/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

using namespace svd;

namespace {

const char *Usage =
    "usage: svd-bench-diff BASELINE.json CURRENT.json\n"
    "  Compares two `svd-bench --suite <suite> --perf --json` documents.\n"
    "  Deterministic fields must match exactly; *_per_sec drift is\n"
    "  reported but never fails the diff.\n";

/// One row as ordered (key, raw-value) pairs; raw values keep their
/// JSON spelling so the comparison is a plain string equality.
using Row = std::vector<std::pair<std::string, std::string>>;

/// Reads \p Path fully; exits with a diagnostic when unreadable.
std::string readFileOrDie(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    std::fprintf(stderr, "svd-bench-diff: cannot read '%s'\n", Path.c_str());
    std::exit(support::ExitUsage);
  }
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}

[[noreturn]] void malformed(const std::string &Path, const char *What) {
  std::fprintf(stderr, "svd-bench-diff: '%s' is not a perf-bench document: %s\n",
               Path.c_str(), What);
  std::exit(support::ExitUsage);
}

/// Parses the flat (key, scalar) pairs of one row object. Row values
/// are scalars only — strings without escapes, numbers, booleans — so
/// a linear scan suffices.
Row parseRow(const std::string &Doc, size_t Begin, size_t End,
             const std::string &Path) {
  Row R;
  size_t I = Begin;
  while (I < End) {
    size_t KeyStart = Doc.find('"', I);
    if (KeyStart == std::string::npos || KeyStart >= End)
      break;
    size_t KeyEnd = Doc.find('"', KeyStart + 1);
    if (KeyEnd == std::string::npos || KeyEnd >= End)
      malformed(Path, "unterminated row key");
    std::string Key = Doc.substr(KeyStart + 1, KeyEnd - KeyStart - 1);
    size_t Colon = Doc.find(':', KeyEnd);
    if (Colon == std::string::npos || Colon >= End)
      malformed(Path, "row key without value");
    size_t ValStart = Colon + 1;
    size_t ValEnd;
    if (Doc[ValStart] == '"') {
      ValEnd = Doc.find('"', ValStart + 1);
      if (ValEnd == std::string::npos || ValEnd >= End)
        malformed(Path, "unterminated row string value");
      ++ValEnd;
    } else {
      ValEnd = Doc.find_first_of(",}", ValStart);
      if (ValEnd == std::string::npos || ValEnd > End)
        malformed(Path, "unterminated row value");
    }
    R.emplace_back(std::move(Key), Doc.substr(ValStart, ValEnd - ValStart));
    I = ValEnd + 1;
  }
  if (R.empty())
    malformed(Path, "empty row object");
  return R;
}

/// Extracts the rows array of a validated perf-bench document.
std::vector<Row> parseRows(const std::string &Doc, const std::string &Path) {
  std::string Err;
  if (!support::jsonValidate(Doc, &Err))
    malformed(Path, Err.c_str());
  size_t RowsAt = Doc.find("\"rows\":[");
  if (RowsAt == std::string::npos)
    malformed(Path, "no \"rows\" array");
  std::vector<Row> Rows;
  size_t I = RowsAt + 8;
  while (I < Doc.size() && Doc[I] != ']') {
    if (Doc[I] != '{') {
      ++I;
      continue;
    }
    size_t Close = Doc.find('}', I);
    if (Close == std::string::npos)
      malformed(Path, "unterminated row object");
    Rows.push_back(parseRow(Doc, I + 1, Close, Path));
    I = Close + 1;
  }
  if (Rows.empty())
    malformed(Path, "empty \"rows\" array");
  return Rows;
}

const std::string *findField(const Row &R, const std::string &Key) {
  for (const auto &KV : R)
    if (KV.first == Key)
      return &KV.second;
  return nullptr;
}

std::string rowName(const Row &R) {
  const std::string *N = findField(R, "name");
  return N ? *N : "<unnamed>";
}

} // namespace

int main(int Argc, char **Argv) {
  support::ArgParser P(Usage);
  if (!P.parse(Argc, Argv) || P.positional().size() != 2)
    return P.usageError();
  const std::string &BasePath = P.positional()[0];
  const std::string &CurPath = P.positional()[1];

  std::vector<Row> Base = parseRows(readFileOrDie(BasePath), BasePath);
  std::vector<Row> Cur = parseRows(readFileOrDie(CurPath), CurPath);

  unsigned Drifts = 0;
  if (Base.size() != Cur.size()) {
    std::printf("DRIFT row count: baseline has %zu rows, current has %zu\n",
                Base.size(), Cur.size());
    ++Drifts;
  }
  size_t N = Base.size() < Cur.size() ? Base.size() : Cur.size();
  for (size_t I = 0; I < N; ++I) {
    const Row &B = Base[I];
    const Row &C = Cur[I];
    // Keys and their order are part of the schema: a field appearing,
    // vanishing, or moving is drift even when shared fields agree.
    for (size_t K = 0; K < B.size() || K < C.size(); ++K) {
      if (K >= B.size() || K >= C.size() ||
          B[K].first != C[K].first) {
        std::printf("DRIFT row %zu (%s): field set differs at position %zu "
                    "(baseline %s, current %s)\n",
                    I, rowName(B).c_str(), K,
                    K < B.size() ? B[K].first.c_str() : "<absent>",
                    K < C.size() ? C[K].first.c_str() : "<absent>");
        ++Drifts;
        break;
      }
      const std::string &Key = B[K].first;
      const std::string &BV = B[K].second;
      const std::string &CV = C[K].second;
      if (Key.find("_per_sec") != std::string::npos) {
        double BR = std::atof(BV.c_str());
        double CR = std::atof(CV.c_str());
        double Pct = BR > 0 ? 100.0 * (CR - BR) / BR : 0.0;
        std::printf("note  row %zu (%s): %s %s -> %s (%+.1f%%, "
                    "advisory)\n",
                    I, rowName(B).c_str(), Key.c_str(), BV.c_str(),
                    CV.c_str(), Pct);
        continue;
      }
      if (BV != CV) {
        std::printf("DRIFT row %zu (%s): %s was %s, now %s\n", I,
                    rowName(B).c_str(), Key.c_str(), BV.c_str(), CV.c_str());
        ++Drifts;
      }
    }
  }

  if (Drifts) {
    std::printf("svd-bench-diff: %u deterministic field(s) drifted from %s\n",
                Drifts, BasePath.c_str());
    return support::ExitFindings;
  }
  std::printf("svd-bench-diff: deterministic fields match %s\n",
              BasePath.c_str());
  return support::ExitClean;
}
