//===- tools/svd_chaos.cpp - Robustness matrix under fault injection ------===//
//
// Runs a suite's workload set through a matrix of deterministic fault
// plans (fault/Fault.h) and asserts the pipeline's robustness
// invariants:
//
//   * no fault plan crashes the process — injected crashes, perturbed
//     traces, and exhausted budgets all surface as classified
//     SampleResults (harness/Runner.h);
//   * every sample is classified, and every non-Ok sample carries a
//     non-empty diagnostic;
//   * fault-free baselines complete Ok;
//   * detection is never lost *silently*: when the fault-free baseline
//     of a (workload, detector, seed) cell detects the known bug, every
//     faulted sample of that cell either still reports it or is
//     explicitly non-Ok.
//
//   svd-chaos [--suite NAME] [--plans N] [--seeds N] [--jobs N]
//             [--json] [--report FILE]
//   svd-chaos --list-plans
//
// Output is bit-identical for every --jobs value: fault decisions are
// pure functions of (plan seed, sample seed, step), and the runner
// collects results in submission order. Neither the text report nor the
// JSON document contains timing fields, so runs diff clean.
//
// Exit status: 0 when every invariant holds, 1 when any is violated,
// 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "fault/Fault.h"
#include "harness/Runner.h"
#include "harness/Suites.h"
#include "support/Cli.h"
#include "support/Error.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "svd/HardwareSvd.h"
#include "svd/OfflineDetector.h"
#include "svd/OnlineSvd.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace svd;
using support::formatString;

namespace {

const char *Usage =
    "usage: svd-chaos [options]\n"
    "       svd-chaos --list-plans\n"
    "  --suite NAME   workload set to torture (default table1; any\n"
    "                 svd-bench suite name)\n"
    "  --plans N      fault plans from the canonical matrix (default 4;\n"
    "                 beyond the presets the matrix cycles with fresh\n"
    "                 seeds)\n"
    "  --seeds N      seeds per (workload, detector) cell (default 1)\n"
    "  --jobs N       worker threads (default 1; 0 = all hardware\n"
    "                 threads); output is identical for every value\n"
    "  --json         emit the svd-chaos-v1 JSON document on stdout\n"
    "  --report FILE  also write the JSON document to FILE\n"
    "  --list-plans   list the canonical fault-plan matrix and exit\n";

/// Name of the stop reason for reports (stable, lowercase).
const char *stopName(vm::StopReason R) {
  switch (R) {
  case vm::StopReason::AllHalted:
    return "all-halted";
  case vm::StopReason::Deadlock:
    return "deadlock";
  case vm::StopReason::StepBudget:
    return "step-budget";
  case vm::StopReason::Paused:
    return "paused";
  }
  return "unknown";
}

/// A detector config carrying only a state budget, for plans with
/// DetectorEntryBudget set. Null when the budget is zero or the
/// detector has no config type (the "none" pseudo-detector).
std::shared_ptr<const detect::DetectorConfig>
budgetConfig(const std::string &Detector, uint64_t Budget) {
  if (Budget == 0)
    return nullptr;
  std::unique_ptr<detect::DetectorConfig> C;
  if (Detector == "svd")
    C = std::make_unique<detect::OnlineSvdDetectorConfig>();
  else if (Detector == "hwsvd")
    C = std::make_unique<detect::HardwareSvdDetectorConfig>();
  else if (Detector == "offline")
    C = std::make_unique<detect::OfflineDetectorConfig>();
  else
    return nullptr;
  C->MaxStateEntries = Budget;
  return std::shared_ptr<const detect::DetectorConfig>(std::move(C));
}

/// One cell of the chaos matrix: the baseline plus one sample per plan.
struct Row {
  std::string Workload;
  std::string Detector;
  uint64_t Seed = 1;
  std::string Plan; ///< "baseline" or the fault plan's name
  harness::SampleResult Result;
};

std::string jsonDocument(const std::string &SuiteName,
                         const std::vector<fault::FaultPlanConfig> &Plans,
                         unsigned Seeds, const std::vector<Row> &Rows,
                         const std::vector<std::string> &Violations) {
  std::string J = "{\"svd-chaos\":\"v1\",\"suite\":\"" +
                  support::jsonEscape(SuiteName) + "\",\"plans\":[";
  for (size_t I = 0; I < Plans.size(); ++I) {
    if (I)
      J += ",";
    J += formatString("{\"name\":\"%s\",\"faults\":\"%s\"}",
                      support::jsonEscape(Plans[I].Name).c_str(),
                      support::jsonEscape(Plans[I].describe()).c_str());
  }
  J += formatString("],\"seeds\":%u,\"rows\":[", Seeds);
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    const harness::SampleResult &S = R.Result;
    if (I)
      J += ",";
    J += formatString(
        "{\"workload\":\"%s\",\"detector\":\"%s\",\"seed\":%llu,"
        "\"plan\":\"%s\",\"outcome\":\"%s\",\"attempts\":%u,"
        "\"diagnostic\":\"%s\",\"stop\":\"%s\",\"steps\":%llu,"
        "\"detected\":%s,\"log_found\":%s,\"dynamic_reports\":%zu,"
        "\"degraded\":%s,\"evictions\":%llu}",
        support::jsonEscape(R.Workload).c_str(),
        support::jsonEscape(R.Detector).c_str(),
        static_cast<unsigned long long>(R.Seed),
        support::jsonEscape(R.Plan).c_str(),
        harness::sampleOutcomeName(S.Outcome), S.Attempts,
        support::jsonEscape(S.Diagnostic).c_str(),
        stopName(S.Metrics.Stop),
        static_cast<unsigned long long>(S.Metrics.Steps),
        S.Metrics.DetectedBug ? "true" : "false",
        S.Metrics.LogFoundBug ? "true" : "false",
        S.Metrics.DynamicReports,
        S.Metrics.DetectorDegraded ? "true" : "false",
        static_cast<unsigned long long>(S.Metrics.DetectorEvictions));
  }
  J += "],\"violations\":[";
  for (size_t I = 0; I < Violations.size(); ++I) {
    if (I)
      J += ",";
    J += "\"" + support::jsonEscape(Violations[I]) + "\"";
  }
  size_t Counts[4] = {0, 0, 0, 0};
  for (const Row &R : Rows)
    ++Counts[static_cast<size_t>(R.Result.Outcome)];
  J += formatString("],\"summary\":{\"samples\":%zu,\"ok\":%zu,"
                    "\"degraded\":%zu,\"timed_out\":%zu,\"failed\":%zu,"
                    "\"invariant_violations\":%zu}}\n",
                    Rows.size(), Counts[0], Counts[1], Counts[2], Counts[3],
                    Violations.size());
  return J;
}

/// Writes \p Content to \p Path after asserting it is valid JSON (the
/// emitter promises a well-formed document; a failure here is a bug).
bool writeJsonFile(const std::string &Path, const std::string &Content) {
  std::string Err;
  if (!support::jsonValidate(Content, &Err))
    support::fatalError("internal error: emitted invalid JSON for '" + Path +
                        "': " + Err);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "cannot write '%s'\n", Path.c_str());
    return false;
  }
  std::fwrite(Content.data(), 1, Content.size(), F);
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SuiteName = "table1", ReportPath;
  uint32_t PlanCount = 4, Seeds = 1, Jobs = 1;
  bool Json = false, ListPlans = false;

  support::ArgParser P(Usage);
  P.value("--suite", &SuiteName);
  P.value("--plans", &PlanCount);
  P.value("--seeds", &Seeds);
  P.value("--jobs", &Jobs);
  P.flag("--json", &Json);
  P.flag("--list-plans", &ListPlans);
  P.value("--report", &ReportPath);
  if (!P.parse(Argc, Argv) || !P.positional().empty())
    return P.usageError();

  if (ListPlans) {
    for (const fault::FaultPlanConfig &C :
         fault::defaultPlanMatrix(PlanCount))
      std::printf("%-16s %s\n", C.Name.c_str(), C.describe().c_str());
    return support::ExitClean;
  }
  if (PlanCount == 0 || Seeds == 0) {
    std::fprintf(stderr, "--plans and --seeds must be nonzero\n");
    return P.usageError();
  }

  std::vector<workloads::Workload> Ws = harness::suiteWorkloads(SuiteName);
  if (Ws.empty()) {
    std::fprintf(stderr, "unknown suite '%s'\n", SuiteName.c_str());
    return P.usageError();
  }

  std::vector<fault::FaultPlanConfig> Plans =
      fault::defaultPlanMatrix(PlanCount);
  uint32_t HwCpus = detect::HardwareSvdConfig().Cache.NumCpus;

  // Build the sample matrix. Plan instances are per (plan, seed) — the
  // FaultPlan mixes the sample seed at construction — and must outlive
  // the run; they are immutable, so samples sharing one is safe.
  std::vector<std::unique_ptr<fault::FaultPlan>> PlanInstances;
  std::vector<harness::SampleSpec> Specs;
  std::vector<Row> Rows;
  for (const workloads::Workload &W : Ws) {
    std::vector<std::string> Detectors = {"svd", "offline"};
    if (W.Program.numThreads() <= HwCpus)
      Detectors.push_back("hwsvd");
    for (const std::string &D : Detectors)
      for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
        harness::SampleSpec S;
        S.Workload = &W;
        S.Detector = D;
        S.Config.Seed = Seed;
        // Coarse timeslices so preemption-storm plans have slices to
        // cut short; identical for the baseline so plan effects are
        // the only difference within a cell.
        S.Config.MinTimeslice = 1;
        S.Config.MaxTimeslice = 4;
        Specs.push_back(S);
        Rows.push_back({W.Name, D, Seed, "baseline", {}});
        for (const fault::FaultPlanConfig &PC : Plans) {
          PlanInstances.push_back(
              std::make_unique<fault::FaultPlan>(PC, Seed));
          harness::SampleSpec F = S;
          F.Config.Faults = PlanInstances.back().get();
          F.Config.Detector = budgetConfig(D, PC.DetectorEntryBudget);
          Specs.push_back(F);
          Rows.push_back({W.Name, D, Seed, PC.Name, {}});
        }
      }
  }

  harness::RunnerConfig RC;
  RC.Jobs = Jobs;
  std::vector<harness::SampleResult> Results =
      harness::ParallelRunner(RC).runGuarded(Specs);
  for (size_t I = 0; I < Rows.size(); ++I)
    Rows[I].Result = std::move(Results[I]);

  // Check the robustness invariants. Reaching this line already
  // discharged the first one (no plan takes down the process).
  std::vector<std::string> Violations;
  size_t PerCell = 1 + Plans.size();
  for (size_t Base = 0; Base < Rows.size(); Base += PerCell) {
    const Row &B = Rows[Base];
    std::string Cell =
        B.Workload + "/" + B.Detector + formatString("/s%llu",
            static_cast<unsigned long long>(B.Seed));
    if (B.Result.Outcome != harness::SampleOutcome::Ok)
      Violations.push_back("baseline not ok: " + Cell + " is " +
                           harness::sampleOutcomeName(B.Result.Outcome) +
                           " (" + B.Result.Diagnostic + ")");
    bool BaselineDetected =
        B.Result.Metrics.DetectedBug || B.Result.Metrics.LogFoundBug;
    for (size_t I = Base; I < Base + PerCell; ++I) {
      const Row &R = Rows[I];
      if (R.Result.Outcome != harness::SampleOutcome::Ok &&
          R.Result.Diagnostic.empty())
        Violations.push_back("missing diagnostic: " + Cell + " plan " +
                             R.Plan + " is " +
                             harness::sampleOutcomeName(R.Result.Outcome));
      if (I != Base && BaselineDetected &&
          R.Result.Outcome == harness::SampleOutcome::Ok &&
          !R.Result.Metrics.DetectedBug && !R.Result.Metrics.LogFoundBug)
        Violations.push_back("silent detection loss: " + Cell + " plan " +
                             R.Plan +
                             " is ok but no longer reports the bug");
    }
  }

  std::string Doc = jsonDocument(SuiteName, Plans, Seeds, Rows, Violations);
  if (!ReportPath.empty() && !writeJsonFile(ReportPath, Doc))
    return support::ExitUsage;

  if (Json) {
    std::fputs(Doc.c_str(), stdout);
    return Violations.empty() ? support::ExitClean : support::ExitFindings;
  }

  std::printf("== svd-chaos: suite %s, %zu plans, %u seed%s, %zu samples "
              "==\n\n",
              SuiteName.c_str(), Plans.size(), Seeds, Seeds == 1 ? "" : "s",
              Rows.size());

  harness::TextTable T(
      {"Plan", "Samples", "Ok", "Degraded", "Timed out", "Failed"});
  std::vector<std::string> PlanNames = {"baseline"};
  for (const fault::FaultPlanConfig &PC : Plans)
    PlanNames.push_back(PC.Name);
  for (const std::string &PN : PlanNames) {
    size_t N = 0, C[4] = {0, 0, 0, 0};
    for (const Row &R : Rows)
      if (R.Plan == PN) {
        ++N;
        ++C[static_cast<size_t>(R.Result.Outcome)];
      }
    T.addRow({PN, formatString("%zu", N), formatString("%zu", C[0]),
              formatString("%zu", C[1]), formatString("%zu", C[2]),
              formatString("%zu", C[3])});
  }
  std::fputs(T.render().c_str(), stdout);

  std::printf("\nnon-ok samples:\n");
  size_t NonOk = 0;
  for (const Row &R : Rows)
    if (R.Result.Outcome != harness::SampleOutcome::Ok) {
      ++NonOk;
      std::printf("  %s/%s/s%llu %-16s %-9s %s\n", R.Workload.c_str(),
                  R.Detector.c_str(),
                  static_cast<unsigned long long>(R.Seed), R.Plan.c_str(),
                  harness::sampleOutcomeName(R.Result.Outcome),
                  R.Result.Diagnostic.c_str());
    }
  if (NonOk == 0)
    std::printf("  (none)\n");

  if (!Violations.empty()) {
    std::printf("\ninvariant violations:\n");
    for (const std::string &V : Violations)
      std::printf("  %s\n", V.c_str());
  }
  std::printf("\nrobustness invariants: %s\n",
              Violations.empty() ? "PASS" : "FAIL");
  return Violations.empty() ? support::ExitClean : support::ExitFindings;
}
