//===- tools/svd_serve.cpp - Streaming detection daemon front end ---------===//
//
// Runs the streaming multi-tenant detection daemon (src/serve,
// DESIGN.md section 17) over a suite's workload set: every (workload,
// seed) pair becomes one client session that streams its execution
// trace as binary frames through bounded rings into sharded detector
// instances, under an optional ingestion fault plan.
//
//   svd-serve [--suite NAME] [--seeds N] [--shards N] [--jobs N]
//             [--shuffle SEED] [--plan NAME] [--chaos] [--verify-batch]
//             [--json] [--report FILE] [--metrics-json FILE]
//   svd-serve --list-plans
//
// --chaos runs the canonical ingestion-fault matrix
// (serve::ingestionPlanMatrix) and asserts the daemon's robustness
// invariants:
//
//   * no plan crashes the process — malformed frames, injected shard
//     crashes, and overload all surface as classified SessionReports;
//   * every non-Ok session carries a non-empty diagnostic;
//   * the fault-free baseline completes Ok on every session with a
//     detection signature byte-identical to the batch pipeline
//     (serve::batchSessionReport);
//   * detection is never corrupted *silently*: a faulted session that
//     still reports Ok must carry the baseline's exact signature.
//
// The JSON document contains session rows only (sorted by session id)
// and no timing fields, so runs at any --jobs and any --shuffle diff
// byte-identical — the determinism half of the acceptance criteria is
// a plain CompareRuns test. The text report adds the per-shard table
// (shard composition legitimately depends on --shuffle).
//
// Exit status: 0 when every invariant holds, 1 when any is violated,
// 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "harness/Suites.h"
#include "obs/Obs.h"
#include "serve/Serve.h"
#include "support/Cli.h"
#include "support/Error.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace svd;
using support::formatString;

namespace {

const char *Usage =
    "usage: svd-serve [options]\n"
    "       svd-serve --list-plans\n"
    "  --suite NAME        workload set to stream (default serve; any\n"
    "                      svd-bench suite name)\n"
    "  --seeds N           seeds per workload, one session each\n"
    "                      (default 2)\n"
    "  --shards N          detector shards (default 2)\n"
    "  --jobs N            worker threads for the shard fan-out\n"
    "                      (default 1; 0 = all hardware threads);\n"
    "                      session reports are identical for every value\n"
    "  --shuffle SEED      permute the session-to-shard assignment;\n"
    "                      session reports are identical for every value\n"
    "  --plan NAME         run one ingestion fault plan from the\n"
    "                      canonical matrix (default: fault-free)\n"
    "  --chaos             run the full ingestion-fault matrix and\n"
    "                      assert the robustness invariants\n"
    "  --verify-batch      also run the batch twin of every session and\n"
    "                      assert fault-free signature parity\n"
    "  --json              emit the svd-serve-v1 JSON document on stdout\n"
    "  --report FILE       also write the JSON document to FILE\n"
    "  --metrics-json FILE export the serve.* observability counters\n"
    "  --list-plans        list the canonical ingestion-fault matrix\n";

/// One row of the report: a session's result under one plan.
struct Row {
  std::string Plan; ///< "none", "baseline", or the fault plan's name
  serve::SessionReport R;
};

/// Builds the session set: one session per (workload, seed), ids in
/// enumeration order. Machines come from harness::machineConfigFor so
/// "seed N" means exactly what it means everywhere else in the repo.
std::vector<serve::SessionInput>
buildSessions(const std::vector<workloads::Workload> &Ws, uint32_t Seeds) {
  std::vector<serve::SessionInput> Sessions;
  uint32_t Id = 0;
  for (const workloads::Workload &W : Ws)
    for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
      serve::SessionInput S;
      S.SessionId = Id++;
      S.Work = &W;
      S.Seed = Seed;
      harness::SampleConfig C;
      C.Seed = Seed;
      S.Machine = harness::machineConfigFor(C);
      Sessions.push_back(S);
    }
  return Sessions;
}

std::string jsonRow(const Row &Rw) {
  const serve::SessionReport &R = Rw.R;
  std::string J = formatString(
      "{\"plan\":\"%s\",\"session\":%u,\"workload\":\"%s\",\"seed\":%llu,"
      "\"outcome\":\"%s\",\"diagnostic\":\"%s\","
      "\"events_streamed\":%llu,\"events_ingested\":%llu,"
      "\"events_shed\":%llu,\"events_budget_dropped\":%llu,"
      "\"frames_sent\":%llu,\"frames_delivered\":%llu,"
      "\"frames_rejected\":%llu,\"frames_duplicated\":%llu,"
      "\"frames_reordered\":%llu,\"frames_lost\":%llu,"
      "\"frames_shed\":%llu,\"backoff_waits\":%llu,\"ticks\":%llu,"
      "\"quarantines\":%u,\"readmissions\":%u,\"rejects\":{",
      support::jsonEscape(Rw.Plan).c_str(), R.SessionId,
      support::jsonEscape(R.Workload).c_str(),
      static_cast<unsigned long long>(R.Seed),
      serve::sessionOutcomeName(R.Outcome),
      support::jsonEscape(R.Diagnostic).c_str(),
      static_cast<unsigned long long>(R.EventsStreamed),
      static_cast<unsigned long long>(R.EventsIngested),
      static_cast<unsigned long long>(R.EventsShed),
      static_cast<unsigned long long>(R.EventsBudgetDropped),
      static_cast<unsigned long long>(R.FramesSent),
      static_cast<unsigned long long>(R.FramesDelivered),
      static_cast<unsigned long long>(R.FramesRejected),
      static_cast<unsigned long long>(R.FramesDuplicated),
      static_cast<unsigned long long>(R.FramesReordered),
      static_cast<unsigned long long>(R.FramesLost),
      static_cast<unsigned long long>(R.FramesShed),
      static_cast<unsigned long long>(R.BackoffWaits),
      static_cast<unsigned long long>(R.Ticks), R.Quarantines,
      R.Readmissions);
  bool First = true;
  for (size_t W = 0; W < serve::RejectCount; ++W)
    if (R.Rejects[W] != 0) {
      if (!First)
        J += ",";
      First = false;
      J += formatString(
          "\"%s\":%llu", serve::rejectName(static_cast<serve::Reject>(W)),
          static_cast<unsigned long long>(R.Rejects[W]));
    }
  J += formatString("},\"signature\":\"%s\"}",
                    support::jsonEscape(R.detectionSignature()).c_str());
  return J;
}

std::string jsonDocument(const std::string &SuiteName, uint32_t Shards,
                         uint32_t Seeds,
                         const std::vector<fault::FaultPlanConfig> &Plans,
                         const std::vector<Row> &Rows,
                         const std::vector<std::string> &Violations) {
  std::string J = "{\"svd-serve\":\"v1\",\"suite\":\"" +
                  support::jsonEscape(SuiteName) +
                  formatString("\",\"shards\":%u,\"seeds\":%u,\"plans\":[",
                               Shards, Seeds);
  for (size_t I = 0; I < Plans.size(); ++I) {
    if (I)
      J += ",";
    J += formatString("{\"name\":\"%s\",\"faults\":\"%s\"}",
                      support::jsonEscape(Plans[I].Name).c_str(),
                      support::jsonEscape(Plans[I].describe()).c_str());
  }
  J += "],\"rows\":[";
  for (size_t I = 0; I < Rows.size(); ++I) {
    if (I)
      J += ",";
    J += jsonRow(Rows[I]);
  }
  J += "],\"violations\":[";
  for (size_t I = 0; I < Violations.size(); ++I) {
    if (I)
      J += ",";
    J += "\"" + support::jsonEscape(Violations[I]) + "\"";
  }
  size_t Counts[5] = {0, 0, 0, 0, 0};
  for (const Row &R : Rows)
    ++Counts[static_cast<size_t>(R.R.Outcome)];
  J += formatString("],\"summary\":{\"sessions\":%zu,\"ok\":%zu,"
                    "\"degraded\":%zu,\"shed\":%zu,\"poisoned\":%zu,"
                    "\"failed\":%zu,\"invariant_violations\":%zu}}\n",
                    Rows.size(), Counts[0], Counts[1], Counts[2], Counts[3],
                    Counts[4], Violations.size());
  return J;
}

/// Writes \p Content to \p Path after asserting it is valid JSON (the
/// emitter promises a well-formed document; a failure here is a bug).
bool writeJsonFile(const std::string &Path, const std::string &Content) {
  std::string Err;
  if (!support::jsonValidate(Content, &Err))
    support::fatalError("internal error: emitted invalid JSON for '" + Path +
                        "': " + Err);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "cannot write '%s'\n", Path.c_str());
    return false;
  }
  std::fwrite(Content.data(), 1, Content.size(), F);
  std::fclose(F);
  return true;
}

std::string cellName(const serve::SessionReport &R) {
  return formatString("%s/s%llu (session %u)", R.Workload.c_str(),
                      static_cast<unsigned long long>(R.Seed), R.SessionId);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SuiteName = "serve", PlanName, ReportPath, MetricsPath;
  uint32_t Seeds = 2, Shards = 2, Jobs = 1;
  uint64_t Shuffle = 0;
  bool Chaos = false, VerifyBatch = false, Json = false, ListPlans = false;

  support::ArgParser P(Usage);
  P.value("--suite", &SuiteName);
  P.value("--seeds", &Seeds);
  P.value("--shards", &Shards);
  P.value("--jobs", &Jobs);
  P.value("--shuffle", &Shuffle);
  P.value("--plan", &PlanName);
  P.flag("--chaos", &Chaos);
  P.flag("--verify-batch", &VerifyBatch);
  P.flag("--json", &Json);
  P.value("--report", &ReportPath);
  P.value("--metrics-json", &MetricsPath);
  P.flag("--list-plans", &ListPlans);
  if (!P.parse(Argc, Argv) || !P.positional().empty())
    return P.usageError();

  std::vector<fault::FaultPlanConfig> Matrix = serve::ingestionPlanMatrix();
  if (ListPlans) {
    for (const fault::FaultPlanConfig &C : Matrix)
      std::printf("%-16s %s\n", C.Name.c_str(), C.describe().c_str());
    return support::ExitClean;
  }
  if (Seeds == 0 || Shards == 0) {
    std::fprintf(stderr, "--seeds and --shards must be nonzero\n");
    return P.usageError();
  }
  if (Chaos && !PlanName.empty()) {
    std::fprintf(stderr, "--chaos and --plan are mutually exclusive\n");
    return P.usageError();
  }

  std::vector<workloads::Workload> Ws = harness::suiteWorkloads(SuiteName);
  if (Ws.empty()) {
    std::fprintf(stderr, "unknown suite '%s'\n", SuiteName.c_str());
    return P.usageError();
  }
  std::vector<serve::SessionInput> Sessions = buildSessions(Ws, Seeds);

  // The plan list this invocation runs: the full matrix under --chaos,
  // one named plan under --plan, otherwise just the fault-free run.
  std::vector<fault::FaultPlanConfig> Plans;
  if (Chaos) {
    Plans = Matrix;
  } else if (!PlanName.empty()) {
    const fault::FaultPlanConfig *Found = nullptr;
    for (const fault::FaultPlanConfig &C : Matrix)
      if (C.Name == PlanName)
        Found = &C;
    if (!Found) {
      std::fprintf(stderr, "unknown plan '%s' (see --list-plans)\n",
                   PlanName.c_str());
      return P.usageError();
    }
    Plans.push_back(*Found);
  }

  obs::Registry Metrics;
  serve::ServeConfig Base;
  Base.Shards = Shards;
  Base.ShuffleSeed = Shuffle;
  Base.Jobs = Jobs;
  Base.Obs = MetricsPath.empty() ? nullptr : &Metrics;

  // Batch-twin signatures, computed once per session: the parity
  // oracle for the fault-free baseline and for faulted-but-Ok rows.
  std::vector<std::string> BatchSig(Sessions.size());
  if (Chaos || VerifyBatch)
    for (size_t I = 0; I < Sessions.size(); ++I)
      BatchSig[I] = serve::batchSessionReport(Sessions[I], Base)
                        .detectionSignature();

  std::vector<Row> Rows;
  std::vector<serve::ServeReport> Reports;
  if (Plans.empty()) {
    Reports.push_back(serve::runServe(Sessions, Base));
    for (const serve::SessionReport &R : Reports.back().Sessions)
      Rows.push_back({"none", R});
  } else {
    for (const fault::FaultPlanConfig &PC : Plans) {
      serve::ServeConfig C = Base;
      C.FaultCfg = &PC;
      Reports.push_back(serve::runServe(Sessions, C));
      for (const serve::SessionReport &R : Reports.back().Sessions)
        Rows.push_back({PC.Name, R});
    }
  }

  // Invariant checks. Reaching this line already discharged the
  // process-survival invariant for every plan that ran.
  std::vector<std::string> Violations;
  size_t PerPlan = Sessions.size();
  for (const Row &Rw : Rows)
    if (Rw.R.Outcome != serve::SessionOutcome::Ok && Rw.R.Diagnostic.empty())
      Violations.push_back("missing diagnostic: " + cellName(Rw.R) +
                           " plan " + Rw.Plan + " is " +
                           serve::sessionOutcomeName(Rw.R.Outcome));
  if (Chaos || VerifyBatch) {
    bool HaveBaseline = Chaos || Plans.empty();
    for (size_t I = 0; I < Rows.size(); ++I) {
      const Row &Rw = Rows[I];
      size_t Session = I % PerPlan;
      bool FaultFree = Rw.Plan == "none" || Rw.Plan == "baseline";
      if (FaultFree && Rw.R.Outcome != serve::SessionOutcome::Ok)
        Violations.push_back(
            "baseline not ok: " + cellName(Rw.R) + " is " +
            serve::sessionOutcomeName(Rw.R.Outcome) + " (" +
            Rw.R.Diagnostic + ")");
      // An Ok session must carry the batch pipeline's exact detection
      // signature — anything else is silent stream corruption. Checked
      // for faulted plans too when the baseline is known good: frame
      // faults that the resequencer heals must not perturb detection.
      if (Rw.R.Outcome == serve::SessionOutcome::Ok &&
          (FaultFree || HaveBaseline) &&
          Rw.R.detectionSignature() != BatchSig[Session])
        Violations.push_back("signature mismatch: " + cellName(Rw.R) +
                             " plan " + Rw.Plan + " ok but got '" +
                             Rw.R.detectionSignature() + "', batch says '" +
                             BatchSig[Session] + "'");
    }
  }

  if (!MetricsPath.empty() &&
      !writeJsonFile(MetricsPath, obs::metricsJson(Metrics)))
    return support::ExitUsage;

  std::string Doc =
      jsonDocument(SuiteName, Shards, Seeds, Plans, Rows, Violations);
  if (!ReportPath.empty() && !writeJsonFile(ReportPath, Doc))
    return support::ExitUsage;

  if (Json) {
    std::fputs(Doc.c_str(), stdout);
    return Violations.empty() ? support::ExitClean : support::ExitFindings;
  }

  std::string Mode = Chaos ? formatString("%zu-plan chaos matrix",
                                          Plans.size())
                     : Plans.empty() ? std::string("fault-free")
                                     : "plan " + Plans[0].Name;
  std::printf("== svd-serve: suite %s, %zu sessions, %u shards, %s ==\n\n",
              SuiteName.c_str(), Sessions.size(), Shards, Mode.c_str());

  if (Chaos) {
    harness::TextTable T({"Plan", "Sessions", "Ok", "Degraded", "Shed",
                          "Poisoned", "Failed"});
    for (size_t PI = 0; PI < Plans.size(); ++PI) {
      size_t C[5] = {0, 0, 0, 0, 0};
      for (size_t I = PI * PerPlan; I < (PI + 1) * PerPlan; ++I)
        ++C[static_cast<size_t>(Rows[I].R.Outcome)];
      T.addRow({Plans[PI].Name, formatString("%zu", PerPlan),
                formatString("%zu", C[0]), formatString("%zu", C[1]),
                formatString("%zu", C[2]), formatString("%zu", C[3]),
                formatString("%zu", C[4])});
    }
    std::fputs(T.render().c_str(), stdout);
  } else {
    // Shard composition depends on --shuffle by design; it is shown in
    // the text report only, never in the JSON document.
    harness::TextTable ST({"Shard", "Sessions", "Frames", "Events",
                           "Quarantines", "Shadow pages", "Shadow bytes"});
    for (const serve::ShardReport &S : Reports.back().Shards)
      ST.addRow(
          {formatString("%u", S.ShardId),
           formatString("%zu", S.Sessions.size()),
           formatString("%llu",
                        static_cast<unsigned long long>(S.FramesDelivered)),
           formatString("%llu",
                        static_cast<unsigned long long>(S.EventsIngested)),
           formatString("%u", S.Quarantines),
           formatString("%llu",
                        static_cast<unsigned long long>(S.ShadowPages)),
           formatString("%llu",
                        static_cast<unsigned long long>(S.ShadowBytes))});
    std::fputs(ST.render().c_str(), stdout);
    std::puts("");

    harness::TextTable T({"Session", "Workload", "Seed", "Shard", "Outcome",
                          "Streamed", "Ingested", "Rejected", "Shed",
                          "Detected"});
    for (const Row &Rw : Rows) {
      const serve::SessionReport &R = Rw.R;
      T.addRow(
          {formatString("%u", R.SessionId), R.Workload,
           formatString("%llu", static_cast<unsigned long long>(R.Seed)),
           formatString("%u", R.Shard), serve::sessionOutcomeName(R.Outcome),
           formatString("%llu",
                        static_cast<unsigned long long>(R.EventsStreamed)),
           formatString("%llu",
                        static_cast<unsigned long long>(R.EventsIngested)),
           formatString("%llu",
                        static_cast<unsigned long long>(R.FramesRejected)),
           formatString("%llu",
                        static_cast<unsigned long long>(R.EventsShed)),
           R.DetectedBug ? "yes" : "no"});
    }
    std::fputs(T.render().c_str(), stdout);
  }

  std::printf("\nnon-ok sessions:\n");
  size_t NonOk = 0;
  for (const Row &Rw : Rows)
    if (Rw.R.Outcome != serve::SessionOutcome::Ok) {
      ++NonOk;
      std::printf("  %-32s %-16s %-9s %s\n", cellName(Rw.R).c_str(),
                  Rw.Plan.c_str(), serve::sessionOutcomeName(Rw.R.Outcome),
                  Rw.R.Diagnostic.c_str());
    }
  if (NonOk == 0)
    std::printf("  (none)\n");

  if (!Violations.empty()) {
    std::printf("\ninvariant violations:\n");
    for (const std::string &V : Violations)
      std::printf("  %s\n", V.c_str());
  }
  if (Chaos || VerifyBatch)
    std::printf("\nserve robustness invariants: %s\n",
                Violations.empty() ? "PASS" : "FAIL");
  return Violations.empty() ? support::ExitClean : support::ExitFindings;
}
