//===- tools/svd_json_check.cpp - JSON well-formedness checker ------------===//
//
// Validates that each file named on the command line is exactly one
// well-formed JSON document (support::jsonValidate, strict RFC 8259).
// CI runs it over svd-bench's --metrics-json and --trace-out output so
// a malformed exporter fails the build rather than silently producing a
// file Perfetto rejects.
//
//   svd-json-check FILE...
//
// Exit status: 0 when every file validates, 2 on an unreadable or
// invalid file (diagnostic names the file and byte offset).
//
//===----------------------------------------------------------------------===//

#include "support/Cli.h"
#include "support/Json.h"

#include <cstdio>
#include <string>

using namespace svd;

namespace {

const char *Usage = "usage: svd-json-check FILE...\n"
                    "  validates each FILE as one strict JSON document\n";

/// Reads \p Path into \p Out; false (with a diagnostic) when unreadable.
bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    std::fprintf(stderr, "cannot read '%s'\n", Path.c_str());
    return false;
  }
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  support::ArgParser P(Usage);
  if (!P.parse(Argc, Argv) || P.positional().empty())
    return P.usageError();

  int Rc = support::ExitClean;
  for (const std::string &Path : P.positional()) {
    std::string Content, Err;
    if (!readFile(Path, Content)) {
      Rc = support::ExitUsage;
      continue;
    }
    if (!support::jsonValidate(Content, &Err)) {
      std::fprintf(stderr, "%s: invalid JSON: %s\n", Path.c_str(),
                   Err.c_str());
      Rc = support::ExitUsage;
      continue;
    }
    std::printf("%s: ok (%zu bytes)\n", Path.c_str(), Content.size());
  }
  return Rc;
}
