//===- examples/mysql_postmortem.cpp - Post-mortem debugging --------------===//
//
// The paper's second deployment scenario (Section 1.1, "From symptoms
// to bugs"): a failing execution was captured with a deterministic
// recorder; replaying it under SVD points at the cause of the failure
// in *this* execution. This example:
//
//   1. runs the MySQL analog until it crashes, recording the schedule
//      (our flight-data-recorder substitute);
//   2. replays the identical execution with the detector attached;
//   3. prints the a-posteriori CU log entries that reveal the root
//      cause — mistakenly shared thread-local data (Figure 3).
//
//===----------------------------------------------------------------------===//

#include "svd/OnlineSvd.h"
#include "vm/Machine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <map>

using namespace svd;

int main() {
  workloads::WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 80;
  P.WorkPadding = 40;
  P.TouchOneIn = 2;
  workloads::Workload Mysql = workloads::mysqlPrepared(P);

  // --- 1. capture a failing run -----------------------------------------
  std::vector<isa::ThreadId> Recording;
  uint64_t CrashSeed = 0;
  for (uint64_t Seed = 1; Seed <= 30 && CrashSeed == 0; ++Seed) {
    vm::MachineConfig MC;
    MC.SchedSeed = Seed;
    MC.MinTimeslice = 1;
    MC.MaxTimeslice = 4;
    vm::Machine M(Mysql.Program, MC);
    M.run();
    if (!M.errors().empty()) {
      CrashSeed = Seed;
      Recording = M.schedule();
      std::printf("production run (seed %llu) crashed: %s\n",
                  static_cast<unsigned long long>(Seed),
                  M.errors()[0].Message.c_str());
      std::printf("recorded %zu scheduling decisions for replay\n\n",
                  Recording.size());
    }
  }
  if (CrashSeed == 0) {
    std::puts("no crashing seed found (unexpected)");
    return 1;
  }

  // --- 2. replay the identical execution under the detector -------------
  vm::MachineConfig MC; // note: a different seed — the schedule rules
  MC.SchedSeed = 999;
  vm::Machine Replay(Mysql.Program, MC);
  detect::OnlineSvd Svd(Mysql.Program);
  Replay.addObserver(&Svd);
  Replay.setReplaySchedule(Recording);
  Replay.run();
  std::printf("replay reproduced the crash: %s\n\n",
              Replay.errors().empty() ? "NO (?)" : "yes");

  // --- 3. a-posteriori examination of the CU log ------------------------
  std::map<uint64_t, std::pair<size_t, detect::CuLogEntry>> Shapes;
  for (const detect::CuLogEntry &E : Svd.cuLog()) {
    auto &S = Shapes[E.staticKey()];
    ++S.first;
    S.second = E;
  }
  std::printf("online violations: %zu; CU log: %zu entries in %zu shapes\n",
              Svd.violations().size(), Svd.cuLog().size(), Shapes.size());
  std::puts("\nlog shapes pointing at intended-thread-local data:");
  for (const auto &[Key, S] : Shapes) {
    (void)Key;
    if (!Mysql.isTrueLogEntry(S.second))
      continue;
    std::printf("  x%-4zu %s\n", S.first,
                S.second.describe(Mysql.Program).c_str());
  }
  std::puts("\nEach triple says: a value this thread wrote for itself was");
  std::puts("overwritten by another connection before being read back —");
  std::puts("i.e. query_id/used_fields must be made per-connection. That");
  std::puts("is the fix the MySQL developers confirmed for the real bug.");
  return 0;
}
