//===- examples/apache_ber_recovery.cpp - Bug avoidance with BER ----------===//
//
// The paper's headline scenario (Section 1.1): deploy SVD together with
// backward error recovery so erroneous executions are rolled back to a
// checkpoint and re-executed more serially — avoiding a bug nobody
// knows about yet. This example runs the buggy Apache analog twice on
// the same seed: bare (the log silently corrupts) and under
// SVD-triggered recovery (the corruption is avoided).
//
//===----------------------------------------------------------------------===//

#include "ber/Recovery.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace svd;

int main() {
  workloads::WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 40;
  P.WorkPadding = 80;
  P.TouchOneIn = 6;
  workloads::Workload Apache = workloads::apacheLog(P);

  // Find a seed whose interleaving corrupts the log.
  uint64_t BadSeed = 0;
  for (uint64_t Seed = 1; Seed <= 30 && BadSeed == 0; ++Seed) {
    vm::MachineConfig MC;
    MC.SchedSeed = Seed;
    MC.MinTimeslice = 1;
    MC.MaxTimeslice = 4;
    vm::Machine M(Apache.Program, MC);
    M.run();
    if (Apache.Manifested(M))
      BadSeed = Seed;
  }
  if (BadSeed == 0) {
    std::puts("no corrupting seed found (unexpected)");
    return 1;
  }

  std::printf("without BER (seed %llu): the access log was silently "
              "corrupted\n",
              static_cast<unsigned long long>(BadSeed));

  // Same seed, now with detector-triggered rollback.
  vm::MachineConfig MC;
  MC.SchedSeed = BadSeed;
  MC.MinTimeslice = 1;
  MC.MaxTimeslice = 4;
  ber::RecoveryConfig RC;
  RC.CheckpointInterval = 400;
  RC.SerialSlack = 1500;
  RC.MaxRollbacks = 256;
  ber::RecoveryManager RM(Apache.Program, MC, RC);
  ber::RecoveryStats S = RM.run();

  std::printf("with BER    (seed %llu): %s\n",
              static_cast<unsigned long long>(BadSeed),
              Apache.Manifested(RM.machine())
                  ? "still corrupted (recovery missed a window)"
                  : "the log is intact — corruption avoided");
  std::printf("\nrecovery costs:\n");
  std::printf("  checkpoints taken : %llu\n",
              static_cast<unsigned long long>(S.Checkpoints));
  std::printf("  violations seen   : %zu\n", S.ViolationsSeen);
  std::printf("  rollbacks         : %llu\n",
              static_cast<unsigned long long>(S.Rollbacks));
  std::printf("  work discarded    : %llu steps (%.1f%% of total)\n",
              static_cast<unsigned long long>(S.WastedSteps),
              100.0 * static_cast<double>(S.WastedSteps) /
                  static_cast<double>(S.WastedSteps + S.FinalSteps));
  std::puts("\nThe dynamic-false-positive rate of Table 2 bounds exactly");
  std::puts("this wasted work: every false report is an unnecessary");
  std::puts("rollback.");
  return 0;
}
