//===- examples/svd_run.cpp - Command-line detector driver ----------------===//
//
// Runs the detectors on an assembly file:
//
//   svd_run FILE.asm [--seed N] [--runs N] [--detector svd|frd|lockset|all]
//           [--timeslice MIN:MAX] [--log] [--disasm]
//           [--record FILE] [--replay FILE]
//
// --record saves the last run's schedule so a failing execution can be
// shipped and replayed deterministically with --replay (the paper's
// flight-data-recorder workflow).
//
// With no arguments it prints usage plus a demo on a built-in program,
// so it is safe to invoke from scripts.
//
//===----------------------------------------------------------------------===//

#include "isa/Assembler.h"
#include "race/HappensBefore.h"
#include "race/Lockset.h"
#include "svd/OnlineSvd.h"
#include "vm/Machine.h"
#include "vm/ScheduleFile.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace svd;

namespace {

const char *Usage =
    "usage: svd_run FILE.asm [options]\n"
    "  --seed N            scheduler seed of the first run (default 1)\n"
    "  --runs N            number of seeded runs (default 1)\n"
    "  --detector KIND     svd | frd | lockset | all (default all)\n"
    "  --timeslice MIN:MAX scheduler timeslice range (default 1:1)\n"
    "  --log               print SVD's a-posteriori CU log\n"
    "  --disasm            print the assembled program and exit\n"
    "  --record FILE       save the last run's schedule for replay\n"
    "  --replay FILE       replay a recorded schedule (ignores --seed)\n";

const char *DemoProgram = R"(
.global counter
.thread worker x2
  li r5, 10
loop:
  ld r1, [@counter]
  addi r1, r1, 1
  st r1, [@counter]
  addi r5, r5, -1
  bnez r5, loop
  halt
)";

struct Options {
  std::string File;
  uint64_t Seed = 1;
  unsigned Runs = 1;
  std::string Detector = "all";
  uint32_t TsMin = 1;
  uint32_t TsMax = 1;
  bool PrintLog = false;
  bool Disasm = false;
  std::string RecordFile;
  std::string ReplayFile;
};

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (A == "--seed") {
      const char *V = Next();
      if (!V)
        return false;
      O.Seed = std::strtoull(V, nullptr, 0);
    } else if (A == "--runs") {
      const char *V = Next();
      if (!V)
        return false;
      O.Runs = static_cast<unsigned>(std::strtoul(V, nullptr, 0));
    } else if (A == "--detector") {
      const char *V = Next();
      if (!V)
        return false;
      O.Detector = V;
    } else if (A == "--timeslice") {
      const char *V = Next();
      if (!V || std::sscanf(V, "%u:%u", &O.TsMin, &O.TsMax) != 2)
        return false;
    } else if (A == "--record") {
      const char *V = Next();
      if (!V)
        return false;
      O.RecordFile = V;
    } else if (A == "--replay") {
      const char *V = Next();
      if (!V)
        return false;
      O.ReplayFile = V;
    } else if (A == "--log") {
      O.PrintLog = true;
    } else if (A == "--disasm") {
      O.Disasm = true;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", A.c_str());
      return false;
    } else {
      O.File = A;
    }
  }
  return true;
}

void runOnce(const isa::Program &P, const Options &O, uint64_t Seed,
             const vm::RecordedSchedule *Replay) {
  vm::MachineConfig MC;
  MC.SchedSeed = Seed;
  MC.MinTimeslice = O.TsMin;
  MC.MaxTimeslice = O.TsMax;
  if (Replay)
    MC.RndSeed = Replay->RndSeed;
  vm::Machine M(P, MC);
  if (Replay)
    M.setReplaySchedule(Replay->Schedule);

  bool WantSvd = O.Detector == "svd" || O.Detector == "all";
  bool WantFrd = O.Detector == "frd" || O.Detector == "all";
  bool WantLockset = O.Detector == "lockset" || O.Detector == "all";

  detect::OnlineSvd Svd(P);
  race::HappensBeforeDetector Frd(P);
  race::LocksetDetector Lockset(P);
  if (WantSvd)
    M.addObserver(&Svd);
  if (WantFrd)
    M.addObserver(&Frd);
  if (WantLockset)
    M.addObserver(&Lockset);

  vm::StopReason R = M.run();
  const char *Why = R == vm::StopReason::AllHalted  ? "all threads halted"
                    : R == vm::StopReason::Deadlock ? "DEADLOCK"
                    : R == vm::StopReason::Paused   ? "replay exhausted"
                                                    : "step budget reached";
  std::printf("--- seed %llu: %llu instructions, %s\n",
              static_cast<unsigned long long>(Seed),
              static_cast<unsigned long long>(M.steps()), Why);
  for (const vm::ProgramError &E : M.errors())
    std::printf("    program error: thread %u pc %u: %s\n", E.Tid, E.Pc,
                E.Message.c_str());
  for (const vm::PrintedValue &V : M.printed())
    std::printf("    print (thread %u): %lld\n", V.Tid,
                static_cast<long long>(V.Value));

  if (WantSvd) {
    std::printf("  SVD: %zu violations, %zu CU-log entries, %llu CUs\n",
                Svd.violations().size(), Svd.cuLog().size(),
                static_cast<unsigned long long>(Svd.numCusFormed()));
    for (const detect::Violation &V : Svd.violations())
      std::printf("    %s\n", V.describe(P).c_str());
    if (O.PrintLog)
      for (const detect::CuLogEntry &E : Svd.cuLog())
        std::printf("    log: %s\n", E.describe(P).c_str());
  }
  if (WantFrd) {
    std::printf("  FRD: %zu races\n", Frd.races().size());
    for (const detect::Violation &V : Frd.races())
      std::printf("    %s\n", V.describe(P).c_str());
  }
  if (WantLockset) {
    std::printf("  Lockset: %zu reports\n", Lockset.reports().size());
    for (const detect::Violation &V : Lockset.reports())
      std::printf("    %s\n", V.describe(P).c_str());
  }

  if (!O.RecordFile.empty()) {
    vm::RecordedSchedule Rec;
    Rec.RndSeed = MC.RndSeed;
    Rec.Schedule = M.schedule();
    if (vm::saveSchedule(O.RecordFile, Rec))
      std::printf("  recorded %zu scheduling decisions to %s\n",
                  Rec.Schedule.size(), O.RecordFile.c_str());
    else
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   O.RecordFile.c_str());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    std::fputs(Usage, stderr);
    return 1;
  }

  std::string Source;
  if (O.File.empty()) {
    std::fputs(Usage, stdout);
    std::puts("\nno file given; running the built-in demo program:\n");
    Source = DemoProgram;
  } else {
    std::ifstream In(O.File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", O.File.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }

  isa::Program P;
  std::vector<isa::AsmError> Errors;
  if (!isa::assembleProgram(Source, P, Errors)) {
    for (const isa::AsmError &E : Errors)
      std::fprintf(stderr, "%s:%u: error: %s\n",
                   O.File.empty() ? "<demo>" : O.File.c_str(), E.Line,
                   E.Message.c_str());
    return 1;
  }
  if (O.Disasm) {
    std::fputs(P.disassemble().c_str(), stdout);
    return 0;
  }

  if (!O.ReplayFile.empty()) {
    vm::RecordedSchedule Rec;
    std::string Error;
    if (!vm::loadSchedule(O.ReplayFile, Rec, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("replaying %zu recorded scheduling decisions from %s\n",
                Rec.Schedule.size(), O.ReplayFile.c_str());
    runOnce(P, O, O.Seed, &Rec);
    return 0;
  }

  for (unsigned I = 0; I < O.Runs; ++I)
    runOnce(P, O, O.Seed + I, nullptr);
  return 0;
}
