; A shared counter incremented only through a helper proc, called twice
; from one critical section. The helper's load/add/store unit sits
; entirely inside the proc body; the lock is acquired and released by
; the caller. Interprocedural lockset summaries propagate "cache_lock
; is held" from both call sites into the proc entry, so
;
;   `svd-lint --prove proc_counter_helper.asm`
;
; proves the helper's computational unit serializable (a proof that
; needs must-held facts to survive the call boundary) and exits 0.
.global counter
.lock counter_lock
.thread worker x2
  lock @counter_lock
  call incr               ; first batched increment
  call incr               ; second — same proc body, same lock
  unlock @counter_lock
  halt
.proc incr
  ld r1, [@counter]
  addi r1, r1, 1
  st r1, [@counter]
  ret
