; Tid-strided slabs of one shared array: thread i owns slab[i*8 .. i*8+7]
; of a single `.global` buffer — the classic sharded-counter layout.
; Interval analysis alone cannot prove these accesses thread-local
; (every thread's raw interval is the whole array), but the value-flow
; pass tracks the affine address term `8*tid + [0,7]` and proves the
; slabs disjoint, so the detectors skip every access:
;
;   svd-lint tid_slab.asm --escape
;
; The `li r6, 0` guard below is a constant branch: sparse conditional
; constant propagation proves the `spill:` arm dead. Without that, the
; escaped index (r3 = 31) would force the whole-array interval back and
; the locality proof would be (soundly) refused.
.global slab 32
.thread shard x4
  li r5, 12
  li r6, 0
  tid r1
  muli r1, r1, 8          ; slab base = 8 * tid
fill:
  rnd r2, 8               ; offset in [0, 7] — inside this thread's slab
  add r2, r2, r1
  ld r3, [r2+@slab]
  addi r3, r3, 1
  bnez r6, spill          ; never taken: r6 is the constant 0
  st r3, [r2+@slab]
  addi r5, r5, -1
  bnez r5, fill
  halt
spill:
  li r3, 31               ; dead code: would index the last word of slab
  st r3, [r3+@slab]
  halt
