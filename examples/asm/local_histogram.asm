; Each thread fills its private histogram with rnd-bounded indices, then
; publishes its sample count under a lock. The escape pass proves every
; histogram access thread-local (the detectors can skip them) while the
; total stays lock-protected:
;
;   svd-lint local_histogram.asm --escape
;
; Note the indices come from `rnd`, whose result interval is bounded by
; construction. A counting-loop induction variable would NOT work here:
; interval analysis has no branch refinement, so a loop counter used as
; an address widens to "anywhere" and the proof is (soundly) refused.
.global total
.lock total_lock
.local hist 8
.thread sampler x2
  li r5, 16
fill:
  rnd r2, 8               ; r2 in [0, 7] — inside this thread's copy
  ld r3, [r2+@hist]
  addi r3, r3, 1
  st r3, [r2+@hist]
  addi r5, r5, -1
  bnez r5, fill
  lock @total_lock        ; publish the sample count
  ld r3, [@total]
  addi r3, r3, 16
  st r3, [@total]
  unlock @total_lock
  halt
