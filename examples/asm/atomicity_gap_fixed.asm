; The repaired twin of atomicity_gap.asm: the write-back stays inside
; the tbl_lock critical section, so the read-modify-write is atomic.
; Both replicas' accesses share a must-held mutex, the conflict-pair
; pass proves no remote access can interleave, and `svd-predict`
; reports nothing (exit 0).
.global refcount
.lock tbl_lock
.thread worker x2
  lock @tbl_lock
  ld r1, [@refcount]
  addi r1, r1, 1
  st r1, [@refcount]      ; write-back still under the lock
  unlock @tbl_lock
  halt
