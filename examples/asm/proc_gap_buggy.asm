; The atomicity_gap.asm bug split across helper procs: `get` reads the
; reference count under tbl_lock, but the caller releases the lock
; before calling `put` to write the bumped value back. Each access is
; individually synchronized inside its helper, yet the cross-function
; read-modify-write is not atomic — a remote replica's write-back can
; land between this thread's unlock and its `put`, and that update is
; lost.
;
; `svd-predict proc_gap_buggy.asm` enumerates the cross-function
; conflict pair (the load in `get` vs. the store in `put` of the other
; replica), confirms the lost update with a directed schedule, and
; exits 1. `svd-lint --prove` cannot prove the unit serializable.
.global refcount
.lock tbl_lock
.thread worker x2
  lock @tbl_lock
  call get                ; read under the lock...
  addi r1, r1, 1
  unlock @tbl_lock        ; ...but the lock is dropped here,
  call put                ; and the write-back races (lost update)
  halt
.proc get
  ld r1, [@refcount]
  ret
.proc put
  st r1, [@refcount]
  ret
