; Correctly locked shared counter — svd-lint reports nothing and the
; escape pass classifies both accesses as lock-protected:
;
;   svd-lint counter_locked.asm --escape
.global counter
.lock ctr_lock
.thread worker x2
  li r5, 8
loop:
  lock @ctr_lock
  ld r1, [@counter]
  addi r1, r1, 1
  st r1, [@counter]
  unlock @ctr_lock
  addi r5, r5, -1
  bnez r5, loop
  halt
