; The AB-BA deadlock shape: one thread locks a then b, the other b then
; a. No single run need deadlock (and the detectors never report lock
; trouble — SVD is lock-oblivious by design), but the static proof pass
; builds the lock-order graph and reports the cycle:
;
;   svd-lint lock_order_cycle.asm --prove
.global x
.global y
.lock a
.lock b
.thread fwd
  lock @a
  lock @b
  ld r1, [@x]
  addi r1, r1, 1
  st r1, [@y]
  unlock @b
  unlock @a
  halt
.thread rev
  lock @b
  lock @a
  ld r1, [@y]
  addi r1, r1, 1
  st r1, [@x]
  unlock @a
  unlock @b
  halt
