; Deliberately buggy program for the svd-lint smoke test. Expected
; diagnostics:
;   - uninit-read: r2 is read by `add` but never written on any path
;   - unlock-not-held: stats_lock is released without being acquired
;   - double-acquire on the path that loops back holding ctr_lock
;   - lock-imbalance: ctr_lock is still held at halt
.global counter
.lock ctr_lock
.lock stats_lock
.thread broken
  add r1, r2, r0          ; r2 never written: always reads the initial zero
  unlock @stats_lock      ; released but never held
  li r5, 2
loop:
  lock @ctr_lock          ; second trip acquires while already held
  ld r1, [@counter]
  addi r1, r1, 1
  st r1, [@counter]
  addi r5, r5, -1
  bnez r5, loop
  halt                    ; exits still holding ctr_lock
