; Figure 1 analog (the MySQL binlog rotation bug): the reference count
; is *read* under tbl_lock, but written back only after the lock is
; released. Each access is individually synchronized, yet the
; read-modify-write is not atomic — another thread's write-back can land
; in the gap, and its update is lost.
;
; `svd-predict atomicity_gap.asm` predicts the lost-update pattern
; statically and confirms it with a directed schedule (preempt after the
; read, slide past the unlock so the remote replica can run, resume
; through the write-back), exiting 1. The fixed twin
; atomicity_gap_fixed.asm keeps the store inside the critical section
; and produces no report.
.global refcount
.lock tbl_lock
.thread worker x2
  lock @tbl_lock
  ld r1, [@refcount]      ; read under the lock...
  addi r1, r1, 1
  unlock @tbl_lock        ; ...but the lock is dropped here,
  st r1, [@refcount]      ; and the write-back races (lost update)
  halt
