; Bounded recursion under a lock: `step` adds to the shared total and
; recurses until the depth counter r2 reaches zero. The computational
; unit spans the caller (the depth init) and every member of the
; recursive proc body; proving it two-phase requires lockset summaries
; that stay precise through the recursive SCC — the must-held set at
; the proc entry is the meet over the outer call site and the
; recursive one, both of which hold total_lock.
;
;   `svd-lint --prove proc_recursive_worker.asm` proves the unit
;   serializable and exits 0.
.global total
.lock total_lock
.thread worker x2
  lock @total_lock
  li r2, 3                ; recursion depth, set inside the lock
  call step
  unlock @total_lock
  halt
.proc step
  beqz r2, done           ; base case: depth exhausted
  ld r1, [@total]
  addi r1, r1, 1
  st r1, [@total]
  addi r2, r2, -1
  call step               ; bounded self-call, still under the lock
done:
  ret
