; Two never-written registers read by one instruction: both warnings
; attach to the same pc, pinning the diagnostic tie-order — same line,
; same category, same thread, same pc, so only the message text orders
; them (r2 before r3, lexicographically):
;
;   svd-lint uninit_pair.asm
.global out
.thread reader
  add r1, r2, r3
  st r1, [@out]
  halt
