; Memcached-style accessor helpers: the cache value is read through a
; `get` proc, bumped in the caller, and written back through a `put`
; proc — one read-modify-write whose endpoints live in two different
; functions. The whole sequence runs under cache_lock, so the inferred
; computational unit (which spans main -> get -> put via the r1
; def-use chain) is provably two-phase:
;
;   `svd-lint --prove proc_cache_get_put.asm` proves the cross-function
;   CU serializable and exits 0; `svd-predict` finds nothing to report.
;
; Contrast with proc_gap_buggy.asm, where `put` runs after the unlock.
.global cache_val
.lock cache_lock
.thread worker x2
  lock @cache_lock
  call get                ; r1 = cache_val   (load in the callee)
  addi r1, r1, 1          ; bump in the caller
  call put                ; cache_val = r1   (store in another callee)
  unlock @cache_lock
  halt
.proc get
  ld r1, [@cache_val]
  ret
.proc put
  st r1, [@cache_val]
  ret
