//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Assembles a small multithreaded program with a missing critical
// section, runs it on the deterministic VM with the online SVD detector
// attached, and prints what the detector saw. Start here.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "isa/Assembler.h"
#include "race/HappensBefore.h"
#include "svd/OnlineSvd.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace svd;

int main() {
  // 1. Write a program in the mini assembly language. Two workers do an
  //    unlocked read-modify-write on a shared counter — the essence of
  //    the Apache bug from the paper's Figure 2.
  isa::Program Program = isa::assembleOrDie(R"(
.global counter
.thread worker x2
  li r5, 40             ; 40 increments each
loop:
  ld r1, [@counter]     ; read...
  addi r1, r1, 1        ; ...modify...
  st r1, [@counter]     ; ...write, with no lock: buggy!
  addi r5, r5, -1
  bnez r5, loop
  halt
)");

  // 2. Create a deterministic machine. The interleaving is a pure
  //    function of the scheduler seed, so every run is reproducible.
  vm::MachineConfig Config;
  Config.SchedSeed = 12345;
  vm::Machine Machine(Program, Config);

  // 3. Attach detectors as observers. SVD needs no annotations; the
  //    happens-before baseline gets the lock operations for free in
  //    this ISA (there are none here).
  detect::OnlineSvd Svd(Program);
  race::HappensBeforeDetector Frd(Program);
  Machine.addObserver(&Svd);
  Machine.addObserver(&Frd);

  // 4. Run to completion and inspect.
  Machine.run();

  isa::Word Final = Machine.readMem(Program.addressOf("counter"));
  std::printf("final counter: %lld (expected 80)%s\n",
              static_cast<long long>(Final),
              Final == 80 ? "" : "  <- lost updates!");

  std::printf("\nSVD serializability violations: %zu\n",
              Svd.violations().size());
  for (size_t I = 0; I < Svd.violations().size() && I < 5; ++I)
    std::printf("  %s\n",
                Svd.violations()[I].describe(Program).c_str());

  std::printf("\nFRD data races: %zu\n", Frd.races().size());
  for (size_t I = 0; I < Frd.races().size() && I < 3; ++I)
    std::printf("  %s\n", Frd.races()[I].describe(Program).c_str());

  std::printf("\nSVD formed %llu computational units over %llu events\n",
              static_cast<unsigned long long>(Svd.numCusFormed()),
              static_cast<unsigned long long>(Svd.eventsObserved()));
  std::puts("\nNext steps: examples/apache_ber_recovery (rollback on");
  std::puts("detection), examples/mysql_postmortem (a-posteriori log),");
  std::puts("examples/svd_run (run detectors on your own .asm files).");
  return 0;
}
