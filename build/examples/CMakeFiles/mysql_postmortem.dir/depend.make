# Empty dependencies file for mysql_postmortem.
# This may be replaced when dependencies are built.
