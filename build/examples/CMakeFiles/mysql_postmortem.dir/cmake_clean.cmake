file(REMOVE_RECURSE
  "CMakeFiles/mysql_postmortem.dir/mysql_postmortem.cpp.o"
  "CMakeFiles/mysql_postmortem.dir/mysql_postmortem.cpp.o.d"
  "mysql_postmortem"
  "mysql_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mysql_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
