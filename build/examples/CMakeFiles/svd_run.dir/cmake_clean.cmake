file(REMOVE_RECURSE
  "CMakeFiles/svd_run.dir/svd_run.cpp.o"
  "CMakeFiles/svd_run.dir/svd_run.cpp.o.d"
  "svd_run"
  "svd_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
