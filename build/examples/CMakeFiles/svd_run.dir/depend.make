# Empty dependencies file for svd_run.
# This may be replaced when dependencies are built.
