# Empty compiler generated dependencies file for apache_ber_recovery.
# This may be replaced when dependencies are built.
