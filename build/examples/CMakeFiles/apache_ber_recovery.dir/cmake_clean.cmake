file(REMOVE_RECURSE
  "CMakeFiles/apache_ber_recovery.dir/apache_ber_recovery.cpp.o"
  "CMakeFiles/apache_ber_recovery.dir/apache_ber_recovery.cpp.o.d"
  "apache_ber_recovery"
  "apache_ber_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apache_ber_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
