# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/SupportTest[1]_include.cmake")
include("/root/repo/build/tests/AssemblerTest[1]_include.cmake")
include("/root/repo/build/tests/CfgTest[1]_include.cmake")
include("/root/repo/build/tests/MachineTest[1]_include.cmake")
include("/root/repo/build/tests/TraceTest[1]_include.cmake")
include("/root/repo/build/tests/PdgTest[1]_include.cmake")
include("/root/repo/build/tests/CuPartitionTest[1]_include.cmake")
include("/root/repo/build/tests/OfflineDetectorTest[1]_include.cmake")
include("/root/repo/build/tests/OnlineSvdTest[1]_include.cmake")
include("/root/repo/build/tests/RaceDetectorTest[1]_include.cmake")
include("/root/repo/build/tests/WorkloadsTest[1]_include.cmake")
include("/root/repo/build/tests/HarnessTest[1]_include.cmake")
include("/root/repo/build/tests/BerTest[1]_include.cmake")
include("/root/repo/build/tests/SerializabilityGraphTest[1]_include.cmake")
include("/root/repo/build/tests/CacheSimTest[1]_include.cmake")
include("/root/repo/build/tests/HardwareSvdTest[1]_include.cmake")
include("/root/repo/build/tests/PropertyTest[1]_include.cmake")
include("/root/repo/build/tests/RelatedDetectorsTest[1]_include.cmake")
include("/root/repo/build/tests/ScheduleFileTest[1]_include.cmake")
include("/root/repo/build/tests/EdgeCaseTest[1]_include.cmake")
include("/root/repo/build/tests/MigrationTest[1]_include.cmake")
include("/root/repo/build/tests/LockFreeTest[1]_include.cmake")
include("/root/repo/build/tests/CacheSimPropertyTest[1]_include.cmake")
