file(REMOVE_RECURSE
  "CMakeFiles/MachineTest.dir/MachineTest.cpp.o"
  "CMakeFiles/MachineTest.dir/MachineTest.cpp.o.d"
  "MachineTest"
  "MachineTest.pdb"
  "MachineTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MachineTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
