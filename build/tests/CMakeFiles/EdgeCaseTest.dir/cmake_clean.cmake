file(REMOVE_RECURSE
  "CMakeFiles/EdgeCaseTest.dir/EdgeCaseTest.cpp.o"
  "CMakeFiles/EdgeCaseTest.dir/EdgeCaseTest.cpp.o.d"
  "EdgeCaseTest"
  "EdgeCaseTest.pdb"
  "EdgeCaseTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EdgeCaseTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
