# Empty compiler generated dependencies file for EdgeCaseTest.
# This may be replaced when dependencies are built.
