# Empty dependencies file for HarnessTest.
# This may be replaced when dependencies are built.
