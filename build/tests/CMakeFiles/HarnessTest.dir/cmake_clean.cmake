file(REMOVE_RECURSE
  "CMakeFiles/HarnessTest.dir/HarnessTest.cpp.o"
  "CMakeFiles/HarnessTest.dir/HarnessTest.cpp.o.d"
  "HarnessTest"
  "HarnessTest.pdb"
  "HarnessTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/HarnessTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
