# Empty dependencies file for PdgTest.
# This may be replaced when dependencies are built.
