file(REMOVE_RECURSE
  "CMakeFiles/PdgTest.dir/PdgTest.cpp.o"
  "CMakeFiles/PdgTest.dir/PdgTest.cpp.o.d"
  "PdgTest"
  "PdgTest.pdb"
  "PdgTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PdgTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
