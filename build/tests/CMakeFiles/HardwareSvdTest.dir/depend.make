# Empty dependencies file for HardwareSvdTest.
# This may be replaced when dependencies are built.
