file(REMOVE_RECURSE
  "CMakeFiles/HardwareSvdTest.dir/HardwareSvdTest.cpp.o"
  "CMakeFiles/HardwareSvdTest.dir/HardwareSvdTest.cpp.o.d"
  "HardwareSvdTest"
  "HardwareSvdTest.pdb"
  "HardwareSvdTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/HardwareSvdTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
