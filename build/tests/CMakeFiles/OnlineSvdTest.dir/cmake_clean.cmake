file(REMOVE_RECURSE
  "CMakeFiles/OnlineSvdTest.dir/OnlineSvdTest.cpp.o"
  "CMakeFiles/OnlineSvdTest.dir/OnlineSvdTest.cpp.o.d"
  "OnlineSvdTest"
  "OnlineSvdTest.pdb"
  "OnlineSvdTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/OnlineSvdTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
