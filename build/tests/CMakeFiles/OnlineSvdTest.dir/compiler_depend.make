# Empty compiler generated dependencies file for OnlineSvdTest.
# This may be replaced when dependencies are built.
