# Empty dependencies file for OnlineSvdTest.
# This may be replaced when dependencies are built.
