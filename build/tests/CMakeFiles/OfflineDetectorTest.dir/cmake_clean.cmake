file(REMOVE_RECURSE
  "CMakeFiles/OfflineDetectorTest.dir/OfflineDetectorTest.cpp.o"
  "CMakeFiles/OfflineDetectorTest.dir/OfflineDetectorTest.cpp.o.d"
  "OfflineDetectorTest"
  "OfflineDetectorTest.pdb"
  "OfflineDetectorTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/OfflineDetectorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
