# Empty compiler generated dependencies file for OfflineDetectorTest.
# This may be replaced when dependencies are built.
