file(REMOVE_RECURSE
  "CMakeFiles/ScheduleFileTest.dir/ScheduleFileTest.cpp.o"
  "CMakeFiles/ScheduleFileTest.dir/ScheduleFileTest.cpp.o.d"
  "ScheduleFileTest"
  "ScheduleFileTest.pdb"
  "ScheduleFileTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ScheduleFileTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
