# Empty dependencies file for ScheduleFileTest.
# This may be replaced when dependencies are built.
