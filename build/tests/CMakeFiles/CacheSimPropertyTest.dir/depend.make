# Empty dependencies file for CacheSimPropertyTest.
# This may be replaced when dependencies are built.
