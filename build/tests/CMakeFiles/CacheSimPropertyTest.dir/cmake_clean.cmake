file(REMOVE_RECURSE
  "CMakeFiles/CacheSimPropertyTest.dir/CacheSimPropertyTest.cpp.o"
  "CMakeFiles/CacheSimPropertyTest.dir/CacheSimPropertyTest.cpp.o.d"
  "CacheSimPropertyTest"
  "CacheSimPropertyTest.pdb"
  "CacheSimPropertyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CacheSimPropertyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
