file(REMOVE_RECURSE
  "BerTest"
  "BerTest.pdb"
  "BerTest[1]_tests.cmake"
  "CMakeFiles/BerTest.dir/BerTest.cpp.o"
  "CMakeFiles/BerTest.dir/BerTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
