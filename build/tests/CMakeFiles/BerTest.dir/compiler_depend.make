# Empty compiler generated dependencies file for BerTest.
# This may be replaced when dependencies are built.
