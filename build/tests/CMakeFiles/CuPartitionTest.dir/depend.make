# Empty dependencies file for CuPartitionTest.
# This may be replaced when dependencies are built.
