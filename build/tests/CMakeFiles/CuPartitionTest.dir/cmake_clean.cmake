file(REMOVE_RECURSE
  "CMakeFiles/CuPartitionTest.dir/CuPartitionTest.cpp.o"
  "CMakeFiles/CuPartitionTest.dir/CuPartitionTest.cpp.o.d"
  "CuPartitionTest"
  "CuPartitionTest.pdb"
  "CuPartitionTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CuPartitionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
