# Empty compiler generated dependencies file for AssemblerTest.
# This may be replaced when dependencies are built.
