file(REMOVE_RECURSE
  "AssemblerTest"
  "AssemblerTest.pdb"
  "AssemblerTest[1]_tests.cmake"
  "CMakeFiles/AssemblerTest.dir/AssemblerTest.cpp.o"
  "CMakeFiles/AssemblerTest.dir/AssemblerTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AssemblerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
