# Empty dependencies file for RelatedDetectorsTest.
# This may be replaced when dependencies are built.
