file(REMOVE_RECURSE
  "CMakeFiles/RelatedDetectorsTest.dir/RelatedDetectorsTest.cpp.o"
  "CMakeFiles/RelatedDetectorsTest.dir/RelatedDetectorsTest.cpp.o.d"
  "RelatedDetectorsTest"
  "RelatedDetectorsTest.pdb"
  "RelatedDetectorsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RelatedDetectorsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
