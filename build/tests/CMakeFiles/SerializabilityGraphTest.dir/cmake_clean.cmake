file(REMOVE_RECURSE
  "CMakeFiles/SerializabilityGraphTest.dir/SerializabilityGraphTest.cpp.o"
  "CMakeFiles/SerializabilityGraphTest.dir/SerializabilityGraphTest.cpp.o.d"
  "SerializabilityGraphTest"
  "SerializabilityGraphTest.pdb"
  "SerializabilityGraphTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SerializabilityGraphTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
