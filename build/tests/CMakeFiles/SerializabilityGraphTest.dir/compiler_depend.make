# Empty compiler generated dependencies file for SerializabilityGraphTest.
# This may be replaced when dependencies are built.
