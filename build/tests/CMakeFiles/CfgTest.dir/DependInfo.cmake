
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/CfgTest.cpp" "tests/CMakeFiles/CfgTest.dir/CfgTest.cpp.o" "gcc" "tests/CMakeFiles/CfgTest.dir/CfgTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/svd_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/svd_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/svd_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/svd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pdg/CMakeFiles/svd_pdg.dir/DependInfo.cmake"
  "/root/repo/build/src/cu/CMakeFiles/svd_cu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/svd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/svd/CMakeFiles/svd_svd.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/svd_race.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/svd_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/svd_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/ber/CMakeFiles/svd_ber.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
