# Empty compiler generated dependencies file for LockFreeTest.
# This may be replaced when dependencies are built.
