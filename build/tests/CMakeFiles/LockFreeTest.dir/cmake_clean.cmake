file(REMOVE_RECURSE
  "CMakeFiles/LockFreeTest.dir/LockFreeTest.cpp.o"
  "CMakeFiles/LockFreeTest.dir/LockFreeTest.cpp.o.d"
  "LockFreeTest"
  "LockFreeTest.pdb"
  "LockFreeTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LockFreeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
