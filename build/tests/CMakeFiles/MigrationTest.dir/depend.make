# Empty dependencies file for MigrationTest.
# This may be replaced when dependencies are built.
