file(REMOVE_RECURSE
  "CMakeFiles/MigrationTest.dir/MigrationTest.cpp.o"
  "CMakeFiles/MigrationTest.dir/MigrationTest.cpp.o.d"
  "MigrationTest"
  "MigrationTest.pdb"
  "MigrationTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MigrationTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
