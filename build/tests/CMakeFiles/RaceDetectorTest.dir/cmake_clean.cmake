file(REMOVE_RECURSE
  "CMakeFiles/RaceDetectorTest.dir/RaceDetectorTest.cpp.o"
  "CMakeFiles/RaceDetectorTest.dir/RaceDetectorTest.cpp.o.d"
  "RaceDetectorTest"
  "RaceDetectorTest.pdb"
  "RaceDetectorTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RaceDetectorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
