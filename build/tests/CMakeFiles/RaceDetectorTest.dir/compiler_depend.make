# Empty compiler generated dependencies file for RaceDetectorTest.
# This may be replaced when dependencies are built.
