file(REMOVE_RECURSE
  "CMakeFiles/fig9_indep_queue.dir/fig9_indep_queue.cpp.o"
  "CMakeFiles/fig9_indep_queue.dir/fig9_indep_queue.cpp.o.d"
  "fig9_indep_queue"
  "fig9_indep_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_indep_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
