# Empty dependencies file for fig9_indep_queue.
# This may be replaced when dependencies are built.
