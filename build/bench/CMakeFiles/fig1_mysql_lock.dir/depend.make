# Empty dependencies file for fig1_mysql_lock.
# This may be replaced when dependencies are built.
