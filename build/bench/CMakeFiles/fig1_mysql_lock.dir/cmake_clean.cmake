file(REMOVE_RECURSE
  "CMakeFiles/fig1_mysql_lock.dir/fig1_mysql_lock.cpp.o"
  "CMakeFiles/fig1_mysql_lock.dir/fig1_mysql_lock.cpp.o.d"
  "fig1_mysql_lock"
  "fig1_mysql_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mysql_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
