file(REMOVE_RECURSE
  "CMakeFiles/sec73_overheads.dir/sec73_overheads.cpp.o"
  "CMakeFiles/sec73_overheads.dir/sec73_overheads.cpp.o.d"
  "sec73_overheads"
  "sec73_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec73_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
