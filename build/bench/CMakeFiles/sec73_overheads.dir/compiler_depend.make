# Empty compiler generated dependencies file for sec73_overheads.
# This may be replaced when dependencies are built.
