file(REMOVE_RECURSE
  "CMakeFiles/sec73_fp_scaling.dir/sec73_fp_scaling.cpp.o"
  "CMakeFiles/sec73_fp_scaling.dir/sec73_fp_scaling.cpp.o.d"
  "sec73_fp_scaling"
  "sec73_fp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec73_fp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
