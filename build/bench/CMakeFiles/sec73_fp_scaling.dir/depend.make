# Empty dependencies file for sec73_fp_scaling.
# This may be replaced when dependencies are built.
