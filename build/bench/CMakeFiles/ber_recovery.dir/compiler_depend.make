# Empty compiler generated dependencies file for ber_recovery.
# This may be replaced when dependencies are built.
