file(REMOVE_RECURSE
  "CMakeFiles/ber_recovery.dir/ber_recovery.cpp.o"
  "CMakeFiles/ber_recovery.dir/ber_recovery.cpp.o.d"
  "ber_recovery"
  "ber_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ber_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
