file(REMOVE_RECURSE
  "CMakeFiles/fig4_crossing_arcs.dir/fig4_crossing_arcs.cpp.o"
  "CMakeFiles/fig4_crossing_arcs.dir/fig4_crossing_arcs.cpp.o.d"
  "fig4_crossing_arcs"
  "fig4_crossing_arcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_crossing_arcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
