# Empty dependencies file for fig4_crossing_arcs.
# This may be replaced when dependencies are built.
