file(REMOVE_RECURSE
  "CMakeFiles/fig3_mysql_prepared.dir/fig3_mysql_prepared.cpp.o"
  "CMakeFiles/fig3_mysql_prepared.dir/fig3_mysql_prepared.cpp.o.d"
  "fig3_mysql_prepared"
  "fig3_mysql_prepared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mysql_prepared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
