# Empty compiler generated dependencies file for fig3_mysql_prepared.
# This may be replaced when dependencies are built.
