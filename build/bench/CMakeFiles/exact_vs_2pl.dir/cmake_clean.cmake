file(REMOVE_RECURSE
  "CMakeFiles/exact_vs_2pl.dir/exact_vs_2pl.cpp.o"
  "CMakeFiles/exact_vs_2pl.dir/exact_vs_2pl.cpp.o.d"
  "exact_vs_2pl"
  "exact_vs_2pl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_vs_2pl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
