# Empty dependencies file for exact_vs_2pl.
# This may be replaced when dependencies are built.
