# Empty compiler generated dependencies file for related_detectors.
# This may be replaced when dependencies are built.
