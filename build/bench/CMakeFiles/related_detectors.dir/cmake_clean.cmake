file(REMOVE_RECURSE
  "CMakeFiles/related_detectors.dir/related_detectors.cpp.o"
  "CMakeFiles/related_detectors.dir/related_detectors.cpp.o.d"
  "related_detectors"
  "related_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
