# Empty dependencies file for hw_svd.
# This may be replaced when dependencies are built.
