file(REMOVE_RECURSE
  "CMakeFiles/hw_svd.dir/hw_svd.cpp.o"
  "CMakeFiles/hw_svd.dir/hw_svd.cpp.o.d"
  "hw_svd"
  "hw_svd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
