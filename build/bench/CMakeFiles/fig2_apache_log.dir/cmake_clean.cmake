file(REMOVE_RECURSE
  "CMakeFiles/fig2_apache_log.dir/fig2_apache_log.cpp.o"
  "CMakeFiles/fig2_apache_log.dir/fig2_apache_log.cpp.o.d"
  "fig2_apache_log"
  "fig2_apache_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_apache_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
