# Empty compiler generated dependencies file for fig2_apache_log.
# This may be replaced when dependencies are built.
