# Empty dependencies file for svd_harness.
# This may be replaced when dependencies are built.
