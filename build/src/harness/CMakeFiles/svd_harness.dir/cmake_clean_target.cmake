file(REMOVE_RECURSE
  "libsvd_harness.a"
)
