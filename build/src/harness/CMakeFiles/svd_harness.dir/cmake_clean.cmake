file(REMOVE_RECURSE
  "CMakeFiles/svd_harness.dir/Harness.cpp.o"
  "CMakeFiles/svd_harness.dir/Harness.cpp.o.d"
  "libsvd_harness.a"
  "libsvd_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
