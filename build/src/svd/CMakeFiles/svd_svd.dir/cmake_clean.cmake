file(REMOVE_RECURSE
  "CMakeFiles/svd_svd.dir/HardwareSvd.cpp.o"
  "CMakeFiles/svd_svd.dir/HardwareSvd.cpp.o.d"
  "CMakeFiles/svd_svd.dir/OfflineDetector.cpp.o"
  "CMakeFiles/svd_svd.dir/OfflineDetector.cpp.o.d"
  "CMakeFiles/svd_svd.dir/OnlineSvd.cpp.o"
  "CMakeFiles/svd_svd.dir/OnlineSvd.cpp.o.d"
  "CMakeFiles/svd_svd.dir/Report.cpp.o"
  "CMakeFiles/svd_svd.dir/Report.cpp.o.d"
  "CMakeFiles/svd_svd.dir/SerializabilityGraph.cpp.o"
  "CMakeFiles/svd_svd.dir/SerializabilityGraph.cpp.o.d"
  "libsvd_svd.a"
  "libsvd_svd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
