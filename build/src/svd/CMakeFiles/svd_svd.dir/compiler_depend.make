# Empty compiler generated dependencies file for svd_svd.
# This may be replaced when dependencies are built.
