file(REMOVE_RECURSE
  "libsvd_svd.a"
)
