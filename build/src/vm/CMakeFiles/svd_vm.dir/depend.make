# Empty dependencies file for svd_vm.
# This may be replaced when dependencies are built.
