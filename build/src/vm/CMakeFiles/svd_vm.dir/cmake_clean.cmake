file(REMOVE_RECURSE
  "CMakeFiles/svd_vm.dir/Machine.cpp.o"
  "CMakeFiles/svd_vm.dir/Machine.cpp.o.d"
  "CMakeFiles/svd_vm.dir/ScheduleFile.cpp.o"
  "CMakeFiles/svd_vm.dir/ScheduleFile.cpp.o.d"
  "libsvd_vm.a"
  "libsvd_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
