file(REMOVE_RECURSE
  "libsvd_vm.a"
)
