file(REMOVE_RECURSE
  "libsvd_race.a"
)
