file(REMOVE_RECURSE
  "CMakeFiles/svd_race.dir/Atomizer.cpp.o"
  "CMakeFiles/svd_race.dir/Atomizer.cpp.o.d"
  "CMakeFiles/svd_race.dir/Frontier.cpp.o"
  "CMakeFiles/svd_race.dir/Frontier.cpp.o.d"
  "CMakeFiles/svd_race.dir/HappensBefore.cpp.o"
  "CMakeFiles/svd_race.dir/HappensBefore.cpp.o.d"
  "CMakeFiles/svd_race.dir/Lockset.cpp.o"
  "CMakeFiles/svd_race.dir/Lockset.cpp.o.d"
  "CMakeFiles/svd_race.dir/StaleValue.cpp.o"
  "CMakeFiles/svd_race.dir/StaleValue.cpp.o.d"
  "libsvd_race.a"
  "libsvd_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
