# Empty dependencies file for svd_race.
# This may be replaced when dependencies are built.
