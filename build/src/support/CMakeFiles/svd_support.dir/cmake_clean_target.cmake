file(REMOVE_RECURSE
  "libsvd_support.a"
)
