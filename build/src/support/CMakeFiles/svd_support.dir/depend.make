# Empty dependencies file for svd_support.
# This may be replaced when dependencies are built.
