file(REMOVE_RECURSE
  "CMakeFiles/svd_support.dir/Error.cpp.o"
  "CMakeFiles/svd_support.dir/Error.cpp.o.d"
  "CMakeFiles/svd_support.dir/Rng.cpp.o"
  "CMakeFiles/svd_support.dir/Rng.cpp.o.d"
  "CMakeFiles/svd_support.dir/Stats.cpp.o"
  "CMakeFiles/svd_support.dir/Stats.cpp.o.d"
  "CMakeFiles/svd_support.dir/StringUtils.cpp.o"
  "CMakeFiles/svd_support.dir/StringUtils.cpp.o.d"
  "libsvd_support.a"
  "libsvd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
