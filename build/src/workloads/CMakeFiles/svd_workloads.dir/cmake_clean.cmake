file(REMOVE_RECURSE
  "CMakeFiles/svd_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/svd_workloads.dir/Workloads.cpp.o.d"
  "libsvd_workloads.a"
  "libsvd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
