# Empty compiler generated dependencies file for svd_workloads.
# This may be replaced when dependencies are built.
