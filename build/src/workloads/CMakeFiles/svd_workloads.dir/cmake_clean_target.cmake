file(REMOVE_RECURSE
  "libsvd_workloads.a"
)
