# Empty dependencies file for svd_cache.
# This may be replaced when dependencies are built.
