file(REMOVE_RECURSE
  "libsvd_cache.a"
)
