file(REMOVE_RECURSE
  "CMakeFiles/svd_cache.dir/CacheSim.cpp.o"
  "CMakeFiles/svd_cache.dir/CacheSim.cpp.o.d"
  "libsvd_cache.a"
  "libsvd_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
