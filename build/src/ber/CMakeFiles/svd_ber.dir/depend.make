# Empty dependencies file for svd_ber.
# This may be replaced when dependencies are built.
