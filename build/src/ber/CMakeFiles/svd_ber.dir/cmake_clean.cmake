file(REMOVE_RECURSE
  "CMakeFiles/svd_ber.dir/Recovery.cpp.o"
  "CMakeFiles/svd_ber.dir/Recovery.cpp.o.d"
  "libsvd_ber.a"
  "libsvd_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
