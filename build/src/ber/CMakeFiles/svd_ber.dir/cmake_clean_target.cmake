file(REMOVE_RECURSE
  "libsvd_ber.a"
)
