file(REMOVE_RECURSE
  "libsvd_cu.a"
)
