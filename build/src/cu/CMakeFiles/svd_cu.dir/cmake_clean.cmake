file(REMOVE_RECURSE
  "CMakeFiles/svd_cu.dir/CuPartition.cpp.o"
  "CMakeFiles/svd_cu.dir/CuPartition.cpp.o.d"
  "libsvd_cu.a"
  "libsvd_cu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_cu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
