# Empty dependencies file for svd_cu.
# This may be replaced when dependencies are built.
