
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cu/CuPartition.cpp" "src/cu/CMakeFiles/svd_cu.dir/CuPartition.cpp.o" "gcc" "src/cu/CMakeFiles/svd_cu.dir/CuPartition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdg/CMakeFiles/svd_pdg.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/svd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/svd_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/svd_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/svd_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
