file(REMOVE_RECURSE
  "libsvd_pdg.a"
)
