file(REMOVE_RECURSE
  "CMakeFiles/svd_pdg.dir/Pdg.cpp.o"
  "CMakeFiles/svd_pdg.dir/Pdg.cpp.o.d"
  "libsvd_pdg.a"
  "libsvd_pdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_pdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
