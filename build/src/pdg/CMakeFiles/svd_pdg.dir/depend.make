# Empty dependencies file for svd_pdg.
# This may be replaced when dependencies are built.
