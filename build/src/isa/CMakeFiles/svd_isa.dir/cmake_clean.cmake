file(REMOVE_RECURSE
  "CMakeFiles/svd_isa.dir/Assembler.cpp.o"
  "CMakeFiles/svd_isa.dir/Assembler.cpp.o.d"
  "CMakeFiles/svd_isa.dir/Builder.cpp.o"
  "CMakeFiles/svd_isa.dir/Builder.cpp.o.d"
  "CMakeFiles/svd_isa.dir/Cfg.cpp.o"
  "CMakeFiles/svd_isa.dir/Cfg.cpp.o.d"
  "CMakeFiles/svd_isa.dir/Isa.cpp.o"
  "CMakeFiles/svd_isa.dir/Isa.cpp.o.d"
  "CMakeFiles/svd_isa.dir/Program.cpp.o"
  "CMakeFiles/svd_isa.dir/Program.cpp.o.d"
  "libsvd_isa.a"
  "libsvd_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
