file(REMOVE_RECURSE
  "libsvd_isa.a"
)
