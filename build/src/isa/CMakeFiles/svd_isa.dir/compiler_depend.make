# Empty compiler generated dependencies file for svd_isa.
# This may be replaced when dependencies are built.
