file(REMOVE_RECURSE
  "libsvd_trace.a"
)
