# Empty dependencies file for svd_trace.
# This may be replaced when dependencies are built.
