file(REMOVE_RECURSE
  "CMakeFiles/svd_trace.dir/Trace.cpp.o"
  "CMakeFiles/svd_trace.dir/Trace.cpp.o.d"
  "libsvd_trace.a"
  "libsvd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
