//===- bench/ber_recovery.cpp - BER-based bug avoidance (Sections 1-2) -----===//
//
// Paper: the headline deployment scenario — SVD triggers backward error
// recovery so erroneous executions are rolled back and re-executed
// "(more) serially", avoiding the bug without knowing it in advance.
// This bench runs the buggy Apache and MySQL analogs across seeds with
// and without BER and reports how many executions ended corrupted or
// crashed, plus the recovery costs (rollbacks, wasted work) that the
// dynamic-false-positive metric of Table 2 is meant to bound.
//
//===----------------------------------------------------------------------===//

#include "ber/Recovery.h"
#include "harness/Harness.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace svd;
using harness::TextTable;
using support::formatString;

namespace {

void runRow(TextTable &T, const workloads::Workload &W, unsigned Seeds) {
  size_t BadWithout = 0, BadWith = 0;
  uint64_t Rollbacks = 0, Wasted = 0, Steps = 0;
  size_t Incomplete = 0;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
    vm::MachineConfig MC;
    MC.SchedSeed = Seed;
    MC.MinTimeslice = 1;
    MC.MaxTimeslice = 4;
    {
      vm::Machine M(W.Program, MC);
      M.run();
      if (W.Manifested(M))
        ++BadWithout;
    }
    ber::RecoveryConfig RC;
    RC.CheckpointInterval = 400;
    RC.SerialSlack = 1500;
    RC.MaxRollbacks = 256;
    ber::RecoveryManager RM(W.Program, MC, RC);
    ber::RecoveryStats S = RM.run();
    if (!S.Completed)
      ++Incomplete;
    if (W.Manifested(RM.machine()))
      ++BadWith;
    Rollbacks += S.Rollbacks;
    Wasted += S.WastedSteps;
    Steps += S.FinalSteps;
  }
  T.addRow({W.Name, formatString("%zu/%u", BadWithout, Seeds),
            formatString("%zu/%u", BadWith, Seeds),
            formatString("%llu", static_cast<unsigned long long>(Rollbacks)),
            formatString("%.1f%%",
                         Steps == 0 ? 0.0
                                    : 100.0 * static_cast<double>(Wasted) /
                                          static_cast<double>(Steps + Wasted)),
            formatString("%zu", Incomplete)});
}

} // namespace

int main() {
  std::puts("== SVD + backward error recovery: bug avoidance ==\n");

  workloads::WorkloadParams AP;
  AP.Threads = 4;
  AP.Iterations = 40;
  AP.WorkPadding = 80;
  AP.TouchOneIn = 6;

  workloads::WorkloadParams MP = AP;
  MP.Iterations = 80;
  MP.TouchOneIn = 4;

  TextTable T({"Program", "Bad runs w/o BER", "Bad runs with BER",
               "Rollbacks", "Wasted work", "Incomplete"});
  runRow(T, workloads::apacheLog(AP), 10);
  runRow(T, workloads::mysqlPrepared(MP), 10);
  std::fputs(T.render().c_str(), stdout);

  std::puts("\nExpected shape: most corruptions/crashes disappear under");
  std::puts("BER at the price of a modest wasted-work fraction; MySQL's");
  std::puts("recovery is weaker because its online detection is (by the");
  std::puts("paper's own Figure 3 analysis) largely a-posteriori.");
  return 0;
}
