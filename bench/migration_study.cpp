//===- bench/migration_study.cpp - §4.3's threads-as-processors cost -------===//
//
// Paper, Section 4.3: "threads may migrate from one processor to
// another. SVD does not have the ability to detect thread migration.
// Therefore, SVD approximates threads with processors" — one detector
// instance per simulated CPU. This bench quantifies what that
// approximation costs: it runs the buggy Apache analog on an OS model
// that multiplexes and migrates threads over a configurable number of
// CPUs, with two detectors on the identical execution — one keyed by
// thread (the ideal) and one keyed by CPU (the paper's deployment) —
// and compares their verdicts as migration frequency rises and as CPUs
// become shared.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"
#include "svd/OnlineSvd.h"
#include "vm/Machine.h"
#include "workloads/Workloads.h"
#include "harness/Harness.h"

#include <cstdio>

using namespace svd;
using harness::TextTable;
using support::formatString;

namespace {

struct Design {
  const char *Name;
  uint32_t NumCpus;
  uint64_t MigrationInterval;
};

} // namespace

int main() {
  std::puts("== Thread migration vs per-processor SVD (Section 4.3) ==\n");

  workloads::WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 80;
  P.WorkPadding = 40;
  P.TouchOneIn = 3;
  workloads::Workload Apache = workloads::apacheLog(P);
  uint32_t NumThreads = Apache.Program.numThreads();

  const Design Designs[] = {
      {"pinned, 1 CPU/thread", NumThreads, 0},
      {"rare migration (every 5000)", NumThreads, 5000},
      {"frequent migration (every 500)", NumThreads, 500},
      {"storm migration (every 50)", NumThreads, 50},
      {"2 threads per CPU, pinned", (NumThreads + 1) / 2, 0},
      {"2 threads per CPU + migration", (NumThreads + 1) / 2, 500},
  };

  const unsigned Seeds = 8;
  TextTable T({"OS model", "True dyn (cpu/thread-keyed)",
               "False dyn (cpu/thread-keyed)",
               "Detected samples (cpu/thread)"});

  for (const Design &D : Designs) {
    size_t CpuTrue = 0, ThreadTrue = 0, CpuFalse = 0, ThreadFalse = 0;
    size_t CpuDetected = 0, ThreadDetected = 0;
    for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
      vm::MachineConfig MC;
      MC.SchedSeed = Seed;
      MC.MinTimeslice = 1;
      MC.MaxTimeslice = 4;
      MC.NumCpus = D.NumCpus;
      MC.MigrationInterval = D.MigrationInterval;
      vm::Machine M(Apache.Program, MC);

      detect::OnlineSvd ByThread(Apache.Program);
      detect::OnlineSvdConfig CpuCfg;
      CpuCfg.NumCpus = D.NumCpus;
      detect::OnlineSvd ByCpu(Apache.Program, CpuCfg);
      M.addObserver(&ByThread);
      M.addObserver(&ByCpu);
      M.run();

      bool Manifested = Apache.Manifested(M);
      auto Count = [&](const detect::OnlineSvd &Svd, size_t &True_,
                       size_t &False_, size_t &Detected) {
        size_t Tr = 0;
        for (const detect::Violation &V : Svd.violations()) {
          if (Apache.isTrueReport(V))
            ++Tr;
          else
            ++False_;
        }
        True_ += Tr;
        if (Manifested && Tr > 0)
          ++Detected;
      };
      Count(ByCpu, CpuTrue, CpuFalse, CpuDetected);
      Count(ByThread, ThreadTrue, ThreadFalse, ThreadDetected);
    }
    T.addRow({D.Name, formatString("%zu / %zu", CpuTrue, ThreadTrue),
              formatString("%zu / %zu", CpuFalse, ThreadFalse),
              formatString("%zu / %zu", CpuDetected, ThreadDetected)});
  }
  std::fputs(T.render().c_str(), stdout);

  std::puts("\nReading guide:");
  std::puts(" * Pinned 1 CPU/thread: the approximation is exact (the");
  std::puts("   paper's evaluation setup).");
  std::puts(" * Migration blends different threads' access streams into");
  std::puts("   one detector lane: true detections erode and spurious");
  std::puts("   reports can appear as a lane inherits another thread's");
  std::puts("   in-flight CU state.");
  std::puts(" * Sharing CPUs outright removes the 'remote' accesses");
  std::puts("   between co-scheduled threads — their mutual conflicts");
  std::puts("   become invisible to a per-processor detector.");
  return 0;
}
