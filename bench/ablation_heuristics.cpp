//===- bench/ablation_heuristics.cpp - Ablation of Section 4.2/4.3 ---------===//
//
// The online SVD algorithm is a bundle of heuristics (Sections 4.2-4.3):
// address dependences, partial control dependences (Skipper), the
// input-blocks-only conflict check, and word-size blocks. This bench
// quantifies each in two parts:
//
//  1. Deterministic micro-scenarios (replayed interleavings) that each
//     isolate one heuristic: where does detection fire, and does it
//     fire at all, as knobs are flipped?
//  2. Macro metrics over the server analogs: total detections stay
//     stable (detection points move between dependence kinds), while
//     block granularity visibly trades false sharing for precision.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "isa/Assembler.h"
#include "support/StringUtils.h"
#include "svd/OnlineSvd.h"
#include "vm/Machine.h"

#include <cstdio>
#include <vector>

using namespace svd;
using namespace svd::harness;
using detect::OnlineSvdConfig;
using support::formatString;

namespace {

struct Variant {
  const char *Name;
  OnlineSvdConfig Cfg;
};

std::vector<Variant> variants() {
  std::vector<Variant> Out;
  Out.push_back({"default (paper)", OnlineSvdConfig()});
  {
    OnlineSvdConfig C;
    C.UseAddressDeps = false;
    Out.push_back({"no address deps", C});
  }
  {
    OnlineSvdConfig C;
    C.UseControlDeps = false;
    Out.push_back({"no control deps", C});
  }
  {
    OnlineSvdConfig C;
    C.Reconv = OnlineSvdConfig::ReconvPolicy::Precise;
    Out.push_back({"precise reconvergence", C});
  }
  {
    OnlineSvdConfig C;
    C.CheckInputBlocksOnly = false;
    Out.push_back({"check write sets too", C});
  }
  {
    OnlineSvdConfig C;
    C.BlockShift = 2;
    Out.push_back({"4-word blocks", C});
  }
  return Out;
}

/// Replays \p Schedule on \p P under \p Cfg; returns "pc:N" of the first
/// report or "-" when silent.
std::string firstReport(const isa::Program &P,
                        const std::vector<isa::ThreadId> &Schedule,
                        const OnlineSvdConfig &Cfg, isa::Word Poke = -1) {
  vm::Machine M(P);
  if (Poke >= 0)
    M.pokeMem(0, Poke);
  detect::OnlineSvd Svd(P, Cfg);
  M.addObserver(&Svd);
  M.setReplaySchedule(Schedule);
  M.run();
  M.clearReplaySchedule();
  M.run();
  if (Svd.violations().empty())
    return "-";
  return formatString("pc:%u (x%zu)", Svd.violations()[0].Pc,
                      Svd.violations().size());
}

std::vector<isa::ThreadId> sched(std::initializer_list<std::pair<int, int>> Runs) {
  std::vector<isa::ThreadId> S;
  for (const auto &[Tid, N] : Runs)
    for (int I = 0; I < N; ++I)
      S.push_back(static_cast<isa::ThreadId>(Tid));
  return S;
}

} // namespace

int main() {
  std::puts("== Ablation 1: micro-scenarios (deterministic replays) ==\n");

  // Address dependence: a buffer store indexed by a clobbered counter
  // (the Figure 2 / Section 4.3 "vector, pointer data types" case).
  isa::Program Indexed = isa::assembleOrDie(R"(
.global outcnt
.global buf 8
.thread w x2
  ld r1, [@outcnt]
  li r9, 5
  st r9, [r1+@buf]       ; pc 2: address-dependent store
  addi r2, r1, 1
  st r2, [@outcnt]       ; pc 4: data-dependent store
  halt
)");
  auto IndexedSched = sched({{0, 1}, {1, 6}, {0, 5}});

  // Control dependence: a store guarded by a predicate over a clobbered
  // flag (ctrlCuSet of Figure 7).
  isa::Program Guarded = isa::assembleOrDie(R"(
.global flag
.global out
.thread a
  ld r1, [@flag]
  beqz r1, skip
  li r2, 1
  st r2, [@out]          ; pc 3: control-dependent store
skip:
  halt
.thread b
  li r3, 2
  st r3, [@flag]
  halt
)");
  auto GuardedSched = sched({{0, 1}, {1, 3}, {0, 4}});

  // Input-blocks-only: the conflict sits on the CU's *write* set.
  isa::Program WriteSet = isa::assembleOrDie(R"(
.global w
.global x
.global z
.thread a
  ld r1, [@w]
  st r1, [@x]
  nop
  st r1, [@z]            ; pc 3: the checking store
  halt
.thread b
  li r3, 4
  st r3, [@x]
  halt
)");
  auto WriteSetSched = sched({{0, 2}, {1, 3}, {0, 3}});

  // Block granularity: disjoint adjacent words.
  isa::Program Adjacent = isa::assembleOrDie(R"(
.global arr 2
.thread a
  ld r1, [@arr]
  addi r1, r1, 1
  st r1, [@arr]
  halt
.thread b
  li r3, 7
  st r3, [@arr+1]
  halt
)");
  auto AdjacentSched = sched({{0, 1}, {1, 3}, {0, 3}});

  TextTable Micro({"Variant", "indexed write", "guarded store",
                   "write-set conflict", "adjacent words (benign)"});
  for (const Variant &V : variants()) {
    Micro.addRow({V.Name, firstReport(Indexed, IndexedSched, V.Cfg),
                  firstReport(Guarded, GuardedSched, V.Cfg, /*Poke=*/1),
                  firstReport(WriteSet, WriteSetSched, V.Cfg),
                  firstReport(Adjacent, AdjacentSched, V.Cfg)});
  }
  std::fputs(Micro.render().c_str(), stdout);
  std::puts("\nReading guide:");
  std::puts(" * indexed write: address deps catch it at the buffer store");
  std::puts("   (pc 2); without them detection falls back to the index");
  std::puts("   write-back (pc 4).");
  std::puts(" * guarded store: only control dependences catch it; both");
  std::puts("   reconvergence policies work on this shape.");
  std::puts(" * write-set conflict: invisible to the input-blocks-only");
  std::puts("   check (the paper's default) — visible when write sets are");
  std::puts("   checked too.");
  std::puts(" * adjacent words: silent with word blocks; a false-sharing");
  std::puts("   report appears with 4-word blocks.\n");

  std::puts("== Ablation 2: macro metrics on the server analogs ==\n");
  workloads::WorkloadParams BP;
  BP.Threads = 4;
  BP.Iterations = 80;
  BP.WorkPadding = 60;
  BP.TouchOneIn = 4;
  workloads::Workload Apache = workloads::apacheLog(BP);
  workloads::Workload Pgsql = workloads::pgsqlOltp(BP);

  const unsigned Seeds = 6;
  TextTable Macro({"Variant", "Apache true (dyn)", "Apache manifested+detected",
                   "PgSQL FP (dyn)", "PgSQL FP (static)"});
  for (const Variant &V : variants()) {
    size_t ApacheTrue = 0, PgDyn = 0, PgStatic = 0;
    size_t Detected = 0, Manifested = 0;
    for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
      SampleConfig C;
      C.Seed = Seed;
      C.MinTimeslice = 1;
      C.MaxTimeslice = 4;
      C.Detector = std::make_shared<detect::OnlineSvdDetectorConfig>(V.Cfg);
      SampleMetrics A = runSample(Apache, "svd", C);
      SampleMetrics G = runSample(Pgsql, "svd", C);
      ApacheTrue += A.DynamicTrue;
      Manifested += A.Manifested;
      Detected += (A.Manifested && A.DetectedBug);
      PgDyn += G.DynamicFalse;
      PgStatic += G.StaticFalse;
    }
    Macro.addRow({V.Name, formatString("%zu", ApacheTrue),
                  formatString("%zu/%zu", Detected, Manifested),
                  formatString("%zu", PgDyn),
                  formatString("%zu", PgStatic)});
  }
  std::fputs(Macro.render().c_str(), stdout);
  std::puts("\nMacro totals are stable across dependence-kind knobs because");
  std::puts("detection points move between data/address/control paths; the");
  std::puts("block-size knob visibly trades precision for false sharing.");
  return 0;
}
