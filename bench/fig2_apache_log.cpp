//===- bench/fig2_apache_log.cpp - Reproduces Figure 2 ---------------------===//
//
// Paper: Figure 2 — Apache's log_config module lacks a critical section
// around the log-buffer append; SVD detects the erroneous execution by
// observing that the CU's serializability is violated: "the input to
// the computation is changed by other threads before the output of the
// computation is written" (Section 7.1). This bench finds an erroneous
// seed, prints SVD's report, and shows the CU the detection hinged on.
//
//===----------------------------------------------------------------------===//

#include "svd/OnlineSvd.h"
#include "support/StringUtils.h"
#include "vm/Machine.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace svd;
using support::formatString;

int main() {
  std::puts("== Figure 2: the Apache log_config bug ==\n");

  workloads::WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 60;
  P.WorkPadding = 60;
  P.TouchOneIn = 4;
  workloads::Workload W = workloads::apacheLog(P);

  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    vm::MachineConfig MC;
    MC.SchedSeed = Seed;
    MC.MinTimeslice = 1;
    MC.MaxTimeslice = 4;
    vm::Machine M(W.Program, MC);
    detect::OnlineSvd Svd(W.Program);
    M.addObserver(&Svd);
    M.run();
    bool Corrupted = W.Manifested(M);
    if (!Corrupted)
      continue;

    std::printf("seed %llu: the access log was silently corrupted\n",
                static_cast<unsigned long long>(Seed));
    size_t TrueReports = 0;
    for (const detect::Violation &V : Svd.violations())
      if (W.isTrueReport(V))
        ++TrueReports;
    std::printf("SVD reported %zu serializability violations (%zu on the "
                "buggy code)\n\n",
                Svd.violations().size(), TrueReports);
    std::puts("First reports:");
    size_t Shown = 0;
    for (const detect::Violation &V : Svd.violations()) {
      if (!W.isTrueReport(V))
        continue;
      std::printf("  %s\n", V.describe(W.Program).c_str());
      std::printf("    detection: %s\n",
                  isa::formatInstruction(
                      W.Program.Threads[V.Tid].Code[V.Pc])
                      .c_str());
      std::printf("    conflict:  %s\n",
                  isa::formatInstruction(
                      W.Program.Threads[V.OtherTid].Code[V.OtherPc])
                      .c_str());
      if (++Shown == 3)
        break;
    }
    std::puts("\nInterpretation: the shared index (outcnt) read at the top");
    std::puts("of the append CU was overwritten by another thread before");
    std::puts("the CU's buffer/index writes completed — the exact Figure 2");
    std::puts("scenario. A detector-triggered rollback (bench/ber_recovery)");
    std::puts("avoids the corruption.");
    return 0;
  }
  std::puts("no erroneous seed found in 20 tries (unexpected; check "
            "workload tuning)");
  return 1;
}
