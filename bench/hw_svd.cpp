//===- bench/hw_svd.cpp - Hardware SVD design study (Section 4.4) ----------===//
//
// Paper, Section 4.4: "the overhead of the software version SVD can be
// dramatically reduced if some parts of it are implemented in hardware
// ... multiprocessor caches can help store CUs ... cache coherence
// protocols can help detect serializability violations. We leave the
// detailed design and evaluation of hardware SVD to future work."
//
// This bench performs that evaluation on the MESI cache substrate:
//
//  * detection recall of the cache-based detector versus software SVD
//    on identical buggy executions, as the cache shrinks (metadata is
//    lost to evictions) and as lines widen (false sharing appears);
//  * the hardware costs: coherence traffic and added metadata bits.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "support/StringUtils.h"
#include "svd/HardwareSvd.h"
#include "svd/OnlineSvd.h"
#include "vm/Machine.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace svd;
using harness::TextTable;
using support::formatString;

namespace {

struct Design {
  const char *Name;
  uint32_t Sets;
  uint32_t Ways;
  uint32_t LineWords;
};

} // namespace

int main() {
  std::puts("== Hardware SVD (Section 4.4): cache-based detection ==\n");

  workloads::WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 60;
  P.WorkPadding = 40;
  P.TouchOneIn = 3;
  workloads::Workload Apache = workloads::apacheLog(P);
  workloads::Workload Pgsql = workloads::pgsqlOltp(P);

  const Design Designs[] = {
      {"ideal (4096-line, 1w)", 1024, 4, 1},
      {"large  (512-line, 1w)", 128, 4, 1},
      {"small  (64-line, 1w)", 16, 4, 1},
      {"tiny   (16-line, 1w)", 8, 2, 1},
      {"large, 4-word lines", 128, 4, 4},
  };
  const unsigned Seeds = 8;

  TextTable T({"Design", "Detected (of SW)", "True dyn (HW/SW)",
               "PgSQL FP (HW/SW)", "Meta evictions", "Inval+downgr/Kinst",
               "Metadata KiB"});

  for (const Design &D : Designs) {
    detect::HardwareSvdConfig HC;
    HC.Cache.NumCpus = Apache.Program.numThreads();
    HC.Cache.Sets = D.Sets;
    HC.Cache.Ways = D.Ways;
    HC.Cache.LineWords = D.LineWords;

    size_t HwDetected = 0, SwDetected = 0;
    size_t HwTrue = 0, SwTrue = 0;
    size_t HwPgFp = 0, SwPgFp = 0;
    uint64_t MetaEvict = 0, Coherence = 0, Insts = 0;
    size_t MetaBits = 0;

    for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
      vm::MachineConfig MC;
      MC.SchedSeed = Seed;
      MC.MinTimeslice = 1;
      MC.MaxTimeslice = 4;

      {
        vm::Machine M(Apache.Program, MC);
        detect::OnlineSvd Sw(Apache.Program);
        detect::HardwareSvd Hw(Apache.Program, HC);
        M.addObserver(&Sw);
        M.addObserver(&Hw);
        M.run();
        bool Manifested = Apache.Manifested(M);
        auto CountTrue = [&](const std::vector<detect::Violation> &V) {
          size_t N = 0;
          for (const detect::Violation &X : V)
            N += Apache.isTrueReport(X);
          return N;
        };
        size_t SwT = CountTrue(Sw.violations());
        size_t HwT = CountTrue(Hw.violations());
        SwTrue += SwT;
        HwTrue += HwT;
        if (Manifested && SwT > 0) {
          ++SwDetected;
          if (HwT > 0)
            ++HwDetected;
        }
        MetaEvict += Hw.metadataEvictions();
        Coherence += Hw.cacheStats().Invalidations +
                     Hw.cacheStats().Downgrades;
        Insts += M.steps();
        MetaBits = Hw.metadataBits();
      }
      {
        detect::HardwareSvdConfig HG = HC;
        HG.Cache.NumCpus = Pgsql.Program.numThreads();
        vm::Machine M(Pgsql.Program, MC);
        detect::OnlineSvd Sw(Pgsql.Program);
        detect::HardwareSvd Hw(Pgsql.Program, HG);
        M.addObserver(&Sw);
        M.addObserver(&Hw);
        M.run();
        SwPgFp += Sw.violations().size();
        HwPgFp += Hw.violations().size();
      }
    }

    T.addRow({D.Name, formatString("%zu/%zu", HwDetected, SwDetected),
              formatString("%zu/%zu", HwTrue, SwTrue),
              formatString("%zu/%zu", HwPgFp, SwPgFp),
              formatString("%llu",
                           static_cast<unsigned long long>(MetaEvict)),
              formatString("%.1f", Insts == 0
                                       ? 0.0
                                       : 1e3 * static_cast<double>(Coherence) /
                                             static_cast<double>(Insts)),
              formatString("%.1f", static_cast<double>(MetaBits) / 8192.0)});
  }
  std::fputs(T.render().c_str(), stdout);

  std::puts("\nReading guide:");
  std::puts(" * The ideal cache matches software SVD's verdicts; shrinking");
  std::puts("   the cache loses line metadata to evictions and detection");
  std::puts("   degrades gracefully — the paper's conjectured trade-off.");
  std::puts(" * Wider lines add false-sharing reports (PgSQL FP column).");
  std::puts(" * Coherence messages per kilo-instruction bound the snoop");
  std::puts("   bandwidth the detector piggybacks on.");
  return 0;
}
