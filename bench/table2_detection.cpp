//===- bench/table2_detection.cpp - Reproduces Table 2 ---------------------===//
//
// Paper: Table 2 "Evaluation Results" — the headline comparison of SVD
// against the Frontier Race Detector (FRD) over erroneous and bug-free
// execution samples of Apache, MySQL, and PgSQL. Thin wrapper over the
// "table2" suite (harness/Suites.h), which documents the columns and
// the expected shape versus the paper; `svd-bench --suite table2` is
// the flag-taking front end.
//
//===----------------------------------------------------------------------===//

#include "harness/Suites.h"

int main() {
  svd::harness::SuiteOptions O;
  O.Jobs = 0; // all hardware threads; output is Jobs-invariant
  return svd::harness::findSuite("table2")->Run(O);
}
