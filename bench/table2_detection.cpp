//===- bench/table2_detection.cpp - Reproduces Table 2 ---------------------===//
//
// Paper: Table 2 "Evaluation Results" — the headline comparison of SVD
// against the Frontier Race Detector (FRD) over erroneous and bug-free
// execution samples of Apache, MySQL, and PgSQL:
//
//   * apparent false negatives (erroneous samples FRD finds, SVD misses),
//   * static false positives per detector (union over a row's samples),
//   * dynamic false positives per million instructions (total),
//   * a-posteriori examinations (distinct CU-log shapes),
//   * SVD's computational units per million instructions (total).
//
// Each sample is one seeded execution (Section 6.1's deterministic
// segments). The same seed produces the identical execution for both
// detectors. Expected shape versus the paper: no apparent false
// negatives on the buggy programs; SVD reports (much) fewer dynamic
// false positives than FRD on Apache and MySQL; on race-free PgSQL the
// relation inverts (FRD ~0, SVD a modest nonzero rate).
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <set>
#include <vector>

using namespace svd;
using namespace svd::harness;
using support::formatString;
using workloads::Workload;

namespace {

struct RowAccum {
  size_t Samples = 0;
  uint64_t Steps = 0;
  size_t ApparentFn = 0;
  std::set<uint64_t> SvdStaticFp;
  std::set<uint64_t> FrdStaticFp;
  size_t SvdDynFp = 0;
  size_t FrdDynFp = 0;
  std::set<uint64_t> LogShapes;
  size_t Cus = 0;

  double perM(size_t N) const {
    return Steps == 0 ? 0.0
                      : static_cast<double>(N) * 1e6 /
                            static_cast<double>(Steps);
  }
};

void runWorkload(const Workload &W, unsigned Seeds, RowAccum &Erroneous,
                 RowAccum &Clean) {
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
    SampleConfig C;
    C.Seed = Seed;
    C.MinTimeslice = 1;
    C.MaxTimeslice = 4;
    SampleMetrics S = runSample(W, DetectorKind::OnlineSvd, C);
    SampleMetrics F = runSample(W, DetectorKind::HappensBefore, C);

    RowAccum &Row = S.Manifested ? Erroneous : Clean;
    ++Row.Samples;
    Row.Steps += S.Steps;
    bool FrdFound = F.DynamicTrue > 0;
    bool SvdFound = S.DetectedBug || S.LogFoundBug;
    if (S.Manifested && FrdFound && !SvdFound)
      ++Row.ApparentFn;
    Row.SvdStaticFp.insert(S.StaticFalseKeys.begin(),
                           S.StaticFalseKeys.end());
    Row.FrdStaticFp.insert(F.StaticFalseKeys.begin(),
                           F.StaticFalseKeys.end());
    Row.SvdDynFp += S.DynamicFalse;
    Row.FrdDynFp += F.DynamicFalse;
    Row.LogShapes.insert(S.StaticLogKeys.begin(), S.StaticLogKeys.end());
    Row.Cus += S.CusFormed;
  }
}

void addRow(TextTable &T, const std::string &Name, const char *Kind,
            const RowAccum &R, bool Buggy) {
  if (R.Samples == 0)
    return;
  T.addRow({Name + " (" + Kind + ")",
            formatString("%.2f", static_cast<double>(R.Steps) / 1e6),
            formatString("%zu", R.Samples),
            Buggy ? formatString("%zu", R.ApparentFn) : std::string("N/A"),
            formatString("%zu", R.SvdStaticFp.size()),
            formatString("%zu", R.FrdStaticFp.size()),
            formatString("%.2f (%zu)", R.perM(R.SvdDynFp), R.SvdDynFp),
            formatString("%.2f (%zu)", R.perM(R.FrdDynFp), R.FrdDynFp),
            formatString("%zu", R.LogShapes.size()),
            formatString("%.0f (%zu)", R.perM(R.Cus), R.Cus)});
}

} // namespace

int main() {
  std::puts("== Table 2: SVD vs FRD over execution samples ==");
  std::puts("(columns follow the paper; rates are per million dynamic");
  std::puts(" instructions, totals in parentheses)\n");

  workloads::WorkloadParams AP;
  AP.Threads = 4;
  AP.Iterations = 100;
  AP.WorkPadding = 120;
  AP.TouchOneIn = 10;

  workloads::WorkloadParams MP;
  MP.Threads = 4;
  MP.Iterations = 150;
  MP.WorkPadding = 80;
  MP.TouchOneIn = 8;

  workloads::WorkloadParams GP;
  GP.Threads = 4;
  GP.Iterations = 150;
  GP.WorkPadding = 80;

  const unsigned Seeds = 12;

  TextTable T({"Program", "M insts", "Samples", "Apparent FN",
               "Static FP SVD", "Static FP FRD", "Dyn FP/M SVD",
               "Dyn FP/M FRD", "A-posteriori", "CUs/M"});

  {
    Workload W = workloads::apacheLog(AP);
    RowAccum Err, Clean;
    runWorkload(W, Seeds, Err, Clean);
    addRow(T, W.Name, "erroneous", Err, true);
    addRow(T, W.Name, "bug-free", Clean, false);
  }
  {
    Workload W = workloads::mysqlPrepared(MP);
    RowAccum Err, Clean;
    runWorkload(W, Seeds, Err, Clean);
    addRow(T, W.Name, "erroneous", Err, true);
    addRow(T, W.Name, "bug-free", Clean, false);
  }
  {
    Workload W = workloads::pgsqlOltp(GP);
    RowAccum Err, Clean;
    runWorkload(W, Seeds, Err, Clean);
    addRow(T, W.Name, "erroneous", Err, true);
    addRow(T, W.Name, "bug-free", Clean, false);
  }

  std::fputs(T.render().c_str(), stdout);

  std::puts("\nReading guide (expected shape versus the paper):");
  std::puts(" * Apparent FN = 0: SVD (online report or CU log) finds every");
  std::puts("   erroneous sample FRD finds.");
  std::puts(" * Apache/MySQL: SVD's dynamic FP rate is a factor below FRD's.");
  std::puts(" * PgSQL: the relation inverts — FRD ~0, SVD a modest rate");
  std::puts("   (the paper's Section 7.2 observation).");
  return 0;
}
