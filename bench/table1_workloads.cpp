//===- bench/table1_workloads.cpp - Reproduces Table 1 ---------------------===//
//
// Paper: Table 1 "Test Programs" — the three server programs, their
// drivers, sizes, and erroneous behaviour. Our analogs substitute the
// real servers (see DESIGN.md); this bench prints the analog inventory
// with measured static/dynamic sizes instead of the authors' LoC counts.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace svd;
using harness::TextTable;
using support::formatString;

int main() {
  std::puts("== Table 1: test programs (synthetic analogs) ==\n");

  workloads::WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 150;
  P.WorkPadding = 80;
  P.TouchOneIn = 8;

  TextTable T({"Name", "Threads", "Static instrs", "Dynamic instrs (seed 1)",
               "Known bug"});
  for (const workloads::Workload &W : workloads::table1Workloads(P)) {
    vm::MachineConfig MC;
    MC.SchedSeed = 1;
    vm::Machine M(W.Program, MC);
    M.run();
    T.addRow({W.Name, formatString("%u", W.Program.numThreads()),
              formatString("%zu", W.Program.numInstructions()),
              formatString("%llu",
                           static_cast<unsigned long long>(M.steps())),
              W.HasKnownBug ? "yes" : "no"});
  }
  std::fputs(T.render().c_str(), stdout);

  std::puts("\nDescriptions:");
  for (const workloads::Workload &W : workloads::table1Workloads(P)) {
    std::printf("\n%s\n  %s\n  Erroneous execution: %s\n", W.Name.c_str(),
                W.Description.c_str(), W.ErrorBehaviour.c_str());
  }
  return 0;
}
