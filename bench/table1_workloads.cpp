//===- bench/table1_workloads.cpp - Reproduces Table 1 ---------------------===//
//
// Paper: Table 1 "Test Programs" — the three server programs, their
// drivers, sizes, and erroneous behaviour. Thin wrapper over the
// "table1" suite (harness/Suites.h); `svd-bench --suite table1` is the
// flag-taking front end.
//
// Dynamic-instruction counts come from harness::machineConfigFor — the
// one seed derivation every sample path shares (SchedSeed = Seed,
// RndSeed = Seed ^ RndSeedSalt). The pre-PR-4 version of this bench
// built a default-configured Machine instead, so its "seed 1" column
// disagreed with the suite's; the counts in tests/golden pin the
// unified derivation.
//
//===----------------------------------------------------------------------===//

#include "harness/Suites.h"

int main() {
  svd::harness::SuiteOptions O;
  O.Jobs = 0; // all hardware threads; output is Jobs-invariant
  return svd::harness::findSuite("table1")->Run(O);
}
