//===- bench/fig1_mysql_lock.cpp - Reproduces Figure 1 ---------------------===//
//
// Paper: Figure 1 — MySQL's table-locking code contains a harmless data
// race on tot_lock. A race detector reports it (a false positive); SVD
// stays silent because every execution of the inferred CUs is
// serializable. This bench runs the isolated fragment under both
// detectors across seeds and prints the inferred CUs of a short run.
//
//===----------------------------------------------------------------------===//

#include "cu/CuPartition.h"
#include "harness/Harness.h"
#include "pdg/Pdg.h"
#include "support/StringUtils.h"
#include "trace/Trace.h"

#include <cstdio>

using namespace svd;
using namespace svd::harness;
using support::formatString;

int main() {
  std::puts("== Figure 1: benign race under a table lock ==\n");

  workloads::WorkloadParams P;
  P.Threads = 3;
  P.Iterations = 40;
  workloads::Workload W = workloads::mysqlTableLock(P);

  size_t SvdDyn = 0, FrdDyn = 0, FrdStatic = 0;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    SampleConfig C;
    C.Seed = Seed;
    SampleMetrics S = runSample(W, DetectorKind::OnlineSvd, C);
    SampleMetrics F = runSample(W, DetectorKind::HappensBefore, C);
    SvdDyn += S.DynamicReports;
    FrdDyn += F.DynamicReports;
    FrdStatic = std::max(FrdStatic, F.StaticReports);
  }
  TextTable T({"Detector", "Dynamic reports (8 seeds)", "Static reports"});
  T.addRow({"SVD", formatString("%zu", SvdDyn), "0"});
  T.addRow({"FRD", formatString("%zu", FrdDyn),
            formatString("%zu", FrdStatic)});
  std::fputs(T.render().c_str(), stdout);
  std::puts("\nThe race detector flags the unlocked read of tot_lock; SVD");
  std::puts("observes that the execution remains serializable and is");
  std::puts("silent — the paper's motivating false-positive avoidance.\n");

  // Show the inferred CUs of a short run (locker thread), mirroring the
  // oval of Figure 1(a).
  workloads::WorkloadParams Small;
  Small.Threads = 2;
  Small.Iterations = 2;
  workloads::Workload SW = workloads::mysqlTableLock(Small);
  vm::MachineConfig MC;
  MC.SchedSeed = 3;
  vm::Machine M(SW.Program, MC);
  trace::TraceRecorder R(SW.Program);
  M.addObserver(&R);
  M.run();
  pdg::DynamicPdg G = pdg::DynamicPdg::build(R.trace());
  cu::CuPartition CUs = cu::CuPartition::compute(R.trace(), G);
  std::puts("Inferred computational units of a 2-iteration run:");
  std::fputs(CUs.describe(R.trace()).c_str(), stdout);
  return 0;
}
