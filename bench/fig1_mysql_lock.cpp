//===- bench/fig1_mysql_lock.cpp - Reproduces Figure 1 ---------------------===//
//
// Paper: Figure 1 — MySQL's harmless data race on tot_lock: a race
// detector reports it, SVD stays silent. Thin wrapper over the "fig1"
// suite (harness/Suites.h); `svd-bench --suite fig1` is the
// flag-taking front end.
//
//===----------------------------------------------------------------------===//

#include "harness/Suites.h"

int main() {
  svd::harness::SuiteOptions O;
  O.Jobs = 0; // all hardware threads; output is Jobs-invariant
  return svd::harness::findSuite("fig1")->Run(O);
}
