//===- bench/sec73_fp_scaling.cpp - Reproduces Section 7.3 (FP scaling) ----===//
//
// Paper: Section 7.3 — over long executions, "the number of static
// false positives grows slowly as the length of the execution
// increases... the main parameter is the exercised code size", while
// "dynamic false positives approximately increased linearly with the
// execution length". This bench sweeps the execution length of the
// race-free PgSQL analog (the pure false-positive workload) and prints
// both series, plus the same sweep for FRD as a control (which stays at
// zero on the race-free program).
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace svd;
using namespace svd::harness;
using support::formatString;

int main() {
  std::puts("== Section 7.3: false-positive growth vs execution length ==\n");

  const unsigned Seeds = 4;
  TextTable T({"Iterations", "M insts", "SVD static FP (avg)",
               "SVD dynamic FP (avg)", "SVD dyn FP/M", "FRD dyn FP (avg)"});

  for (uint32_t Iter : {25u, 50u, 100u, 200u, 400u, 800u}) {
    workloads::WorkloadParams P;
    P.Threads = 4;
    P.Iterations = Iter;
    P.WorkPadding = 40;
    workloads::Workload W = workloads::pgsqlOltp(P);

    double Steps = 0, StaticFp = 0, DynFp = 0, FrdDyn = 0;
    for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
      SampleConfig C;
      C.Seed = Seed;
      C.MinTimeslice = 1;
      C.MaxTimeslice = 4;
      SampleMetrics S = runSample(W, DetectorKind::OnlineSvd, C);
      SampleMetrics F = runSample(W, DetectorKind::HappensBefore, C);
      Steps += static_cast<double>(S.Steps);
      StaticFp += static_cast<double>(S.StaticFalse);
      DynFp += static_cast<double>(S.DynamicFalse);
      FrdDyn += static_cast<double>(F.DynamicFalse);
    }
    Steps /= Seeds;
    StaticFp /= Seeds;
    DynFp /= Seeds;
    FrdDyn /= Seeds;
    T.addRow({formatString("%u", Iter), formatString("%.2f", Steps / 1e6),
              formatString("%.1f", StaticFp), formatString("%.1f", DynFp),
              formatString("%.2f", DynFp * 1e6 / Steps),
              formatString("%.1f", FrdDyn)});
  }
  std::fputs(T.render().c_str(), stdout);

  std::puts("\nExpected shape: the static column saturates (it tracks the");
  std::puts("exercised code, which stops growing), the dynamic column");
  std::puts("grows roughly linearly with length (a roughly constant");
  std::puts("per-million rate), and FRD stays at zero on the race-free");
  std::puts("program.");
  return 0;
}
