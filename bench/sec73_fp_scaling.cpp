//===- bench/sec73_fp_scaling.cpp - Reproduces Section 7.3 (FP scaling) ----===//
//
// Paper: Section 7.3 — static false positives grow slowly with
// execution length (they track exercised code), dynamic false positives
// grow roughly linearly. Thin wrapper over the "sec73" suite
// (harness/Suites.h); `svd-bench --suite sec73` is the flag-taking
// front end.
//
//===----------------------------------------------------------------------===//

#include "harness/Suites.h"

int main() {
  svd::harness::SuiteOptions O;
  O.Jobs = 0; // all hardware threads; output is Jobs-invariant
  return svd::harness::findSuite("sec73")->Run(O);
}
