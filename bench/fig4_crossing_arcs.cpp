//===- bench/fig4_crossing_arcs.cpp - Reproduces Figure 4 ------------------===//
//
// Paper: Figure 4 — the formal construction behind CU inference: when a
// thread reads back a shared word it wrote (a "shared arc" in the
// td-PDG), the crossing arcs are removed so the two halves fall into
// different weakly connected components. This bench builds the d-PDG of
// a minimal program with exactly that shape, prints every dependence
// arc, and shows the resulting partition (Definitions 1-3 / Figure 5).
//
//===----------------------------------------------------------------------===//

#include "cu/CuPartition.h"
#include "isa/Assembler.h"
#include "pdg/Pdg.h"
#include "support/StringUtils.h"
#include "trace/Trace.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace svd;

int main() {
  std::puts("== Figure 4: crossing-arc removal around a shared arc ==\n");

  // Thread a writes shared g, computes, then reads g back: the read
  // must start a new CU even though control/true dependences connect
  // the whole straight-line region.
  isa::Program P = isa::assembleOrDie(R"(
.global g
.thread a
  li r1, 3          ; pc 0   \
  addi r2, r1, 1    ; pc 1    | CU #1: produces the shared value
  st r2, [@g]       ; pc 2   /
  ld r3, [@g]       ; pc 3   \  shared arc (st -> ld) ends CU #1
  add r4, r3, r1    ; pc 4    | CU #2: consumes it
  halt
.thread b
  ld r9, [@g]       ; makes g shared
  halt
)");

  vm::Machine M(P);
  trace::TraceRecorder R(P);
  M.addObserver(&R);
  // Run thread a fully first, then b (the partition is order-robust;
  // this order keeps the printed trace readable).
  M.setReplaySchedule({0, 0, 0, 0, 0, 0, 1, 1});
  M.run();
  M.clearReplaySchedule();
  M.run();

  const trace::ProgramTrace &T = R.trace();
  pdg::DynamicPdg G = pdg::DynamicPdg::build(T);

  std::puts("dynamic statements:");
  for (uint32_t E = 0; E < T.size(); ++E)
    std::printf("  [%u] t%u pc%u: %s\n", E, T[E].Tid, T[E].Pc,
                isa::formatInstruction(*T[E].Instr).c_str());

  std::puts("\ndependence arcs (From -> To):");
  for (const pdg::DepArc &A : G.arcs()) {
    std::printf("  [%u] -> [%u]  %s%s", A.From, A.To,
                pdg::depKindName(A.Kind), A.ViaMemory ? " via " : "");
    if (A.ViaMemory)
      std::fputs(P.describeAddress(A.Address).c_str(), stdout);
    std::puts("");
  }

  cu::CuPartition CUs = cu::CuPartition::compute(T, G);
  std::puts("\nresulting computational units:");
  std::fputs(CUs.describe(T).c_str(), stdout);

  std::puts("\nNote how the true-shared arc (st -> ld on g) separates the");
  std::puts("producer statements from the consumer statements, while the");
  std::puts("register dependence li -> add would otherwise have connected");
  std::puts("them — that register arc is the removed crossing arc.");
  return 0;
}
