//===- bench/fig9_indep_queue.cpp - Reproduces Figure 9 --------------------===//
//
// Paper: Figure 9 / Section 5.1 — an atomic region that fills a queue
// entry with two *independently computed* fields is not weakly
// connected, so SVD infers CUs smaller than the region; missing-lock
// bugs in such regions could become false negatives. The mitigation is
// the address dependence on the queue index: the field stores are
// address-dependent on the index read, which ties them to the index's
// CU for the strict-2PL check. The paper reports no observed false
// negatives from this pattern.
//
// This bench (a) removes the queue lock and shows that SVD still
// detects the erroneous executions — with the detections at the
// address-dependent field stores — and that FRD agrees (no apparent
// false negatives); and (b) runs the correctly locked queue, where FRD
// is silent and SVD reports the residual false positives caused by the
// consumer's ever-growing read-only CU (the Section 5.2 "CUs that are
// too large" case).
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "isa/Assembler.h"
#include "support/StringUtils.h"
#include "svd/OnlineSvd.h"
#include "vm/Machine.h"

#include <cstdio>
#include <set>

using namespace svd;
using namespace svd::harness;
using support::formatString;

namespace {

/// Figure 9's region with the lock omitted: producers race on the tail
/// index and entry fields.
const char *UnlockedQueueSource = R"(
.global qtail
.global qdataa 16
.global qdatab 16
.thread producer x3
  li r10, 40
ploop:
  rnd r1, 100             ; field_a from program input
  rnd r2, 100             ; field_b from program input (independent)
  ld r3, [@qtail]         ; racy index read
  st r1, [r3+@qdataa]     ; address-dependent field store
  st r2, [r3+@qdatab]     ; address-dependent field store
  addi r4, r3, 1
  andi r4, r4, 15
  st r4, [@qtail]         ; racy index write-back
  addi r10, r10, -1
  bnez r10, ploop
  halt
)";

} // namespace

int main() {
  std::puts("== Figure 9: independent computations in an atomic region ==\n");

  std::puts("-- (a) lock omitted: does SVD miss the bug? --\n");
  isa::Program Buggy = isa::assembleOrDie(UnlockedQueueSource);
  TextTable A({"Configuration", "Dynamic reports", "Field-store reports",
               "Seeds detected"});
  for (bool AddrDeps : {true, false}) {
    detect::OnlineSvdConfig Cfg;
    Cfg.UseAddressDeps = AddrDeps;
    size_t Total = 0, AtFieldStores = 0, SeedsDetected = 0;
    for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
      vm::MachineConfig MC;
      MC.SchedSeed = Seed;
      MC.MinTimeslice = 1;
      MC.MaxTimeslice = 4;
      vm::Machine M(Buggy, MC);
      detect::OnlineSvd Svd(Buggy, Cfg);
      M.addObserver(&Svd);
      M.run();
      Total += Svd.violations().size();
      for (const detect::Violation &V : Svd.violations()) {
        // pcs 3 and 4 are the two field stores.
        if (V.Pc == 3 || V.Pc == 4)
          ++AtFieldStores;
      }
      if (!Svd.violations().empty())
        ++SeedsDetected;
    }
    A.addRow({AddrDeps ? "SVD (address deps on)" : "SVD (address deps off)",
              formatString("%zu", Total), formatString("%zu", AtFieldStores),
              formatString("%zu/8", SeedsDetected)});
  }
  std::fputs(A.render().c_str(), stdout);
  std::puts("\nWith address dependences, part of the detection happens at");
  std::puts("the entry-field stores themselves — the mitigation Section");
  std::puts("5.1 describes for non-weakly-connected atomic regions.\n");

  std::puts("-- (b) correctly locked queue: residual behaviour --\n");
  workloads::WorkloadParams P;
  P.Threads = 2;
  P.Iterations = 60;
  workloads::Workload W = workloads::sharedQueue(P);
  size_t SvdDyn = 0, Frd = 0;
  std::set<uint64_t> SvdStatic;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    SampleConfig C;
    C.Seed = Seed;
    SampleMetrics S = runSample(W, "svd", C);
    SampleMetrics F = runSample(W, "frd", C);
    SvdDyn += S.DynamicReports;
    SvdStatic.insert(S.StaticFalseKeys.begin(), S.StaticFalseKeys.end());
    Frd += F.DynamicReports;
  }
  TextTable B({"Detector", "Dynamic reports (8 seeds)", "Static reports"});
  B.addRow({"SVD", formatString("%zu", SvdDyn),
            formatString("%zu", SvdStatic.size())});
  B.addRow({"FRD", formatString("%zu", Frd), "0"});
  std::fputs(B.render().c_str(), stdout);
  std::puts("\nFRD is silent (the queue is race-free). SVD's reports are");
  std::puts("false positives of the Section 5.2 'CUs too large' kind: the");
  std::puts("consumer only ever *reads* the producer's index, so its CU is");
  std::puts("never cut by a shared dependence and keeps accumulating input");
  std::puts("blocks across critical sections.");
  return 0;
}
