//===- bench/fig3_mysql_prepared.cpp - Reproduces Figure 3 -----------------===//
//
// Paper: Figure 3 — MySQL's prepared-query engine mistakenly shares
// query_id / used_fields between connections. The online check misses
// the resulting crash (shared dependences cut CUs smaller than the
// atomic region), but the a-posteriori CU log records the broken
// thread-local communication: the triple (s, rw, lw) — a local read s
// whose producer lw was overwritten by the remote write rw. Examining
// the log reveals the root cause, which is how the paper's authors
// diagnosed the then-unknown MySQL bug (Section 7.1).
//
//===----------------------------------------------------------------------===//

#include "svd/OnlineSvd.h"
#include "support/StringUtils.h"
#include "vm/Machine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <map>

using namespace svd;

int main() {
  std::puts("== Figure 3: the MySQL prepared-query crash ==\n");

  workloads::WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 80;
  P.WorkPadding = 40;
  P.TouchOneIn = 2;
  workloads::Workload W = workloads::mysqlPrepared(P);

  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    vm::MachineConfig MC;
    MC.SchedSeed = Seed;
    MC.MinTimeslice = 1;
    MC.MaxTimeslice = 4;
    vm::Machine M(W.Program, MC);
    detect::OnlineSvd Svd(W.Program);
    M.addObserver(&Svd);
    M.run();
    if (M.errors().empty())
      continue;

    std::printf("seed %llu: the server crashed:\n",
                static_cast<unsigned long long>(Seed));
    for (const vm::ProgramError &E : M.errors())
      std::printf("  thread %u pc %u: %s\n", E.Tid, E.Pc,
                  E.Message.c_str());

    size_t OnlineTrue = 0;
    for (const detect::Violation &V : Svd.violations())
      if (W.isTrueReport(V))
        ++OnlineTrue;
    std::printf("\nonline serializability violations on the buggy code: "
                "%zu\n",
                OnlineTrue);
    std::puts("(the paper expects few or none here: the mistakenly shared");
    std::puts(" variables are read back inside the atomic region, cutting");
    std::puts(" the CUs too small for the online check)\n");

    // The a-posteriori examination: group the CU log by code shape.
    std::map<uint64_t, std::pair<size_t, detect::CuLogEntry>> Shapes;
    for (const detect::CuLogEntry &E : Svd.cuLog()) {
      auto &Slot = Shapes[E.staticKey()];
      ++Slot.first;
      Slot.second = E;
    }
    std::printf("a-posteriori CU log: %zu entries, %zu distinct shapes:\n",
                Svd.cuLog().size(), Shapes.size());
    for (const auto &[Key, Slot] : Shapes) {
      (void)Key;
      const detect::CuLogEntry &E = Slot.second;
      const char *Tag = W.isTrueLogEntry(E) ? "  [ROOT CAUSE]" : "";
      std::printf("  x%-4zu %s%s\n", Slot.first,
                  E.describe(W.Program).c_str(), Tag);
    }
    std::puts("\nThe [ROOT CAUSE] shapes show intended-thread-local values");
    std::puts("(query_id / used_fields) overwritten by other connections —");
    std::puts("exactly the diagnosis of Figure 3.");
    return 0;
  }
  std::puts("no crashing seed found in 30 tries (unexpected; check "
            "workload tuning)");
  return 1;
}
