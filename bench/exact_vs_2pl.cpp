//===- bench/exact_vs_2pl.cpp - Section 3.3's accuracy/cost trade-off ------===//
//
// Paper, Section 3.3: "Not violating strict 2PL is sufficient yet not
// necessary for serializability... More accurate detection of
// serializability violations is possible with higher detection cost. We
// leave exploring this direction to future work."
//
// This bench explores that direction: it compares the offline strict-2PL
// scan (Figure 6) against the exact conflict-serializability test (the
// CU precedence graph, Papadimitriou [25]) on identical traces —
// quantifying how many strict-2PL reports are artifacts of the
// conservative test, and what the exact test costs.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "isa/Assembler.h"
#include "svd/OfflineDetector.h"
#include "svd/SerializabilityGraph.h"
#include "support/StringUtils.h"
#include "trace/Trace.h"

#include <chrono>
#include <cstdio>

using namespace svd;
using harness::TextTable;
using support::formatString;

namespace {

struct Row {
  size_t TwoPlFlagged = 0;
  size_t ExactFlagged = 0;
  size_t TwoPlReports = 0;
  size_t Cycles = 0;
  size_t Samples = 0;
  double TwoPlSeconds = 0;
  double ExactSeconds = 0;
};

double seconds(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

Row runRow(const workloads::Workload &W, unsigned Seeds) {
  Row R;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
    vm::MachineConfig MC;
    MC.SchedSeed = Seed;
    MC.MinTimeslice = 1;
    MC.MaxTimeslice = 4;
    vm::Machine M(W.Program, MC);
    trace::TraceRecorder Rec(W.Program);
    M.addObserver(&Rec);
    M.run();
    const trace::ProgramTrace &T = Rec.trace();

    pdg::DynamicPdg G = pdg::DynamicPdg::build(T);
    cu::CuPartition CUs = cu::CuPartition::compute(T, G);

    auto T0 = std::chrono::steady_clock::now();
    std::vector<detect::Violation> TwoPl = detect::detectOffline(T, CUs);
    R.TwoPlSeconds += seconds(T0);

    T0 = std::chrono::steady_clock::now();
    detect::SerializabilityGraph SG =
        detect::SerializabilityGraph::build(T, G, CUs);
    R.ExactSeconds += seconds(T0);

    ++R.Samples;
    R.TwoPlFlagged += !TwoPl.empty();
    R.ExactFlagged += !SG.isSerializable();
    R.TwoPlReports += TwoPl.size();
    R.Cycles += SG.cycles().size();
  }
  return R;
}

} // namespace

int main() {
  std::puts("== Exact serializability vs strict 2PL (Section 3.3) ==\n");

  workloads::WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 40;
  P.WorkPadding = 40;
  P.TouchOneIn = 4;

  // The decisive micro-scenario first: strict 2PL is violated but the
  // execution is serializable (equivalent to a-then-b).
  {
    isa::Program Micro = isa::assembleOrDie(R"(
.global x
.global out
.thread a
  ld r1, [@x]       ; CU input: x
  addi r1, r1, 5
  nop
  st r1, [@out]     ; private output
  halt
.thread b
  li r2, 9
  st r2, [@x]       ; intervening remote write
  halt
)");
    vm::Machine M(Micro);
    trace::TraceRecorder Rec(Micro);
    M.addObserver(&Rec);
    M.setReplaySchedule({0, 0, 1, 1, 1, 0, 0, 0});
    M.run();
    M.clearReplaySchedule();
    M.run();
    const trace::ProgramTrace &T = Rec.trace();
    pdg::DynamicPdg G = pdg::DynamicPdg::build(T);
    cu::CuPartition CUs = cu::CuPartition::compute(T, G);
    bool TwoPl = !detect::detectOffline(T, CUs).empty();
    bool Exact =
        !detect::SerializabilityGraph::build(T, G, CUs).isSerializable();
    std::printf("micro read-then-publish: strict 2PL flags it: %s; exact "
                "test: %s\n\n",
                TwoPl ? "YES" : "no",
                Exact ? "non-serializable (?)" : "serializable");
  }

  TextTable T({"Workload", "Samples", "2PL flagged", "Exact flagged",
               "2PL reports", "Cycles", "2PL time", "Exact time"});
  struct Item {
    const char *Name;
    workloads::Workload W;
  };
  std::vector<Item> Items;
  Items.push_back({"Apache (buggy)", workloads::apacheLog(P)});
  Items.push_back({"PgSQL (race-free)", workloads::pgsqlOltp(P)});
  {
    workloads::RandomParams RP;
    RP.Seed = 5;
    RP.Threads = 4;
    RP.Iterations = 25;
    RP.OmitLockProbability = 0.3;
    Items.push_back({"Random (30% unlocked)", workloads::randomWorkload(RP)});
  }
  {
    workloads::RandomParams RP;
    RP.Seed = 6;
    RP.Threads = 4;
    RP.Iterations = 25;
    RP.OmitLockProbability = 0.0;
    RP.BenignReadProbability = 0.4;
    Items.push_back({"Random (locked+benign)", workloads::randomWorkload(RP)});
  }

  for (Item &I : Items) {
    Row R = runRow(I.W, 8);
    T.addRow({I.Name, formatString("%zu", R.Samples),
              formatString("%zu", R.TwoPlFlagged),
              formatString("%zu", R.ExactFlagged),
              formatString("%zu", R.TwoPlReports),
              formatString("%zu", R.Cycles),
              formatString("%.3fs", R.TwoPlSeconds),
              formatString("%.3fs", R.ExactSeconds)});
  }
  std::fputs(T.render().c_str(), stdout);

  std::puts("\nExpected shape: the micro-scenario splits the two tests");
  std::puts("(2PL flags a serializable execution). On the macro workloads");
  std::puts("exact flags at most as many executions, and condenses the");
  std::puts("dynamic 2PL report stream into a few cycle witnesses. The");
  std::puts("residual PgSQL cycles are artifacts of CU *inference* (units");
  std::puts("larger than the atomic regions), showing that better");
  std::puts("serializability testing alone cannot remove all of SVD's");
  std::puts("false positives — the paper's Section 5.2 point.");
  return 0;
}
