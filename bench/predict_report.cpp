//===- bench/predict_report.cpp - Static prediction vs confirmation -------===//
//
// The svd-predict pipeline run over the paper's workload analogs:
// static CU inference + conflict pairs enumerate candidate
// unserializable interleavings, and the directed-schedule engine
// replays each one against the online detector. The table contrasts
// how many interleavings static reasoning proposed with how many a
// concrete schedule confirmed — the gap is the noise a purely static
// tool would have shipped to the user.
//
//===----------------------------------------------------------------------===//

#include "analysis/Predict.h"
#include "predict/Confirm.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace svd;
using namespace svd::predict;

int main() {
  std::puts("== svd-predict over the Table 1 workload analogs ==\n");
  std::printf("%-14s %9s %9s %13s %s\n", "workload", "predicted",
              "confirmed", "directed-runs", "known bug?");

  workloads::WorkloadParams P;
  P.Threads = 2;
  P.Iterations = 4;
  P.WorkPadding = 4;
  P.TouchOneIn = 1;

  size_t BuggyConfirmed = 0, CleanConfirmed = 0;
  for (const workloads::Workload &W : workloads::table1Workloads(P)) {
    PredictReport Rep = predictAndConfirm(W.Program);
    std::printf("%-14s %9zu %9zu %13zu %s\n", W.Name.c_str(),
                Rep.Predictions.size(), Rep.numConfirmed(),
                static_cast<size_t>(Rep.DirectedRuns),
                W.HasKnownBug ? "yes" : "no");
    (W.HasKnownBug ? BuggyConfirmed : CleanConfirmed) +=
        Rep.numConfirmed();
  }

  std::printf("\nconfirmed on buggy workloads: %zu\n", BuggyConfirmed);
  std::printf("confirmed on clean workloads: %zu (benign scoreboard "
              "races excepted, see tests/PredictTest.cpp)\n",
              CleanConfirmed);
  std::puts("\nEvery count in the 'confirmed' column is backed by a "
            "concrete schedule in which the online detector (or an "
            "assertion) fired; 'predicted' minus 'confirmed' is the "
            "noise the confirmation stage filtered.");
  return 0;
}
