//===- bench/predict_report.cpp - Static prediction vs confirmation -------===//
//
// The svd-predict pipeline over the paper's workload analogs: how many
// interleavings static reasoning proposed vs how many a directed
// schedule confirmed. Thin wrapper over the "predict" suite
// (harness/Suites.h); `svd-bench --suite predict` is the flag-taking
// front end.
//
//===----------------------------------------------------------------------===//

#include "harness/Suites.h"

int main() {
  svd::harness::SuiteOptions O;
  O.Jobs = 0; // all hardware threads; output is Jobs-invariant
  return svd::harness::findSuite("predict")->Run(O);
}
