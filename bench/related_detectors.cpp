//===- bench/related_detectors.cpp - The Section 8 detector zoo ------------===//
//
// Paper, Section 8: SVD is contrasted with three detector families —
// happens-before race detection, lockset race detection, and
// atomicity-based checking (Atomizer [15], stale-value analysis [6]).
// "SVD differs from atomicity detectors in that they use two different
// program safety properties — serializability versus atomicity.
// Atomicity detectors check how synchronization is done in programs...
// serializability is concerned with particular program executions."
//
// This bench runs all five detectors on identical executions of three
// characteristic workloads and prints each family's verdict, making the
// property differences concrete:
//
//  * benign-race counter (Figure 1): only SVD stays silent;
//  * buggy Apache: everyone fires (SVD on the erroneous interleavings
//    only);
//  * race-free PgSQL: the race detectors are silent, the atomicity
//    family flags the read-then-publish pattern, SVD shows its residual
//    over-long-CU reports.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "isa/Assembler.h"
#include "race/Atomizer.h"
#include "race/HappensBefore.h"
#include "race/Lockset.h"
#include "race/StaleValue.h"
#include "support/StringUtils.h"
#include "svd/OnlineSvd.h"
#include "vm/Machine.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <set>

using namespace svd;
using harness::TextTable;
using support::formatString;

namespace {

struct Verdict {
  size_t Dynamic = 0;
  std::set<uint64_t> Static;

  std::string cell() const {
    if (Dynamic == 0)
      return "silent";
    return formatString("%zu dyn / %zu static", Dynamic, Static.size());
  }
};

struct AllVerdicts {
  Verdict Svd, Frd, Lockset, Atomizer, Stale;
};

AllVerdicts runAll(const workloads::Workload &W, unsigned Seeds) {
  AllVerdicts V;
  for (uint64_t Seed = 1; Seed <= Seeds; ++Seed) {
    vm::MachineConfig MC;
    MC.SchedSeed = Seed;
    MC.MinTimeslice = 1;
    MC.MaxTimeslice = 4;
    vm::Machine M(W.Program, MC);
    detect::OnlineSvd Svd(W.Program);
    race::HappensBeforeDetector Frd(W.Program);
    race::LocksetDetector Ls(W.Program);
    race::AtomizerDetector Atom(W.Program);
    race::StaleValueDetector Stale(W.Program);
    M.addObserver(&Svd);
    M.addObserver(&Frd);
    M.addObserver(&Ls);
    M.addObserver(&Atom);
    M.addObserver(&Stale);
    M.run();
    auto Fold = [](Verdict &Out,
                   const std::vector<detect::Violation> &Reports) {
      Out.Dynamic += Reports.size();
      for (const detect::Violation &R : Reports)
        Out.Static.insert(R.staticKey());
    };
    Fold(V.Svd, Svd.violations());
    Fold(V.Frd, Frd.races());
    Fold(V.Lockset, Ls.reports());
    Fold(V.Atomizer, Atom.reports());
    Fold(V.Stale, Stale.reports());
  }
  return V;
}

} // namespace

int main() {
  std::puts("== Related-work detector comparison (Section 8) ==");
  std::puts("(identical executions, 6 seeds each)\n");

  workloads::WorkloadParams Small;
  Small.Threads = 3;
  Small.Iterations = 40;
  workloads::Workload Benign = workloads::mysqlTableLock(Small);

  workloads::WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 60;
  P.WorkPadding = 40;
  P.TouchOneIn = 3;
  workloads::Workload Apache = workloads::apacheLog(P);
  workloads::Workload Pgsql = workloads::pgsqlOltp(P);

  // A correct lock-free counter: synchronization nobody annotates.
  workloads::Workload LockFree;
  LockFree.Name = "LockFree";
  LockFree.Program = isa::assembleOrDie(R"(
.global counter
.thread t x4
  li r5, 40
loop:
retry:
  ld r1, [@counter]
  addi r2, r1, 1
  cas r3, r1, r2, [@counter]
  beqz r3, retry
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  LockFree.Manifested = [](const vm::Machine &) { return false; };

  TextTable T({"Detector (property)", "Benign race (Fig.1)",
               "Apache (buggy)", "PgSQL (race-free)",
               "Lock-free counter (correct)"});

  AllVerdicts B = runAll(Benign, 6);
  AllVerdicts A = runAll(Apache, 6);
  AllVerdicts G = runAll(Pgsql, 6);
  AllVerdicts L = runAll(LockFree, 6);

  T.addRow({"SVD (serializability of this execution)", B.Svd.cell(),
            A.Svd.cell(), G.Svd.cell(), L.Svd.cell()});
  T.addRow({"FRD (happens-before races)", B.Frd.cell(), A.Frd.cell(),
            G.Frd.cell(), L.Frd.cell()});
  T.addRow({"Lockset (consistent locking)", B.Lockset.cell(),
            A.Lockset.cell(), G.Lockset.cell(), L.Lockset.cell()});
  T.addRow({"Atomizer (block reducibility)", B.Atomizer.cell(),
            A.Atomizer.cell(), G.Atomizer.cell(), L.Atomizer.cell()});
  T.addRow({"Stale-value (values outliving CS)", B.Stale.cell(),
            A.Stale.cell(), G.Stale.cell(), L.Stale.cell()});
  std::fputs(T.render().c_str(), stdout);

  std::puts("\nReading guide:");
  std::puts(" * Benign race: FRD, lockset, and Atomizer all report the");
  std::puts("   harmless tot_lock pattern (it is racy, and it makes the");
  std::puts("   critical section irreducible); SVD, which judges the");
  std::puts("   execution rather than the synchronization, stays silent.");
  std::puts(" * Buggy Apache: the race families find the missing lock;");
  std::puts("   SVD's reports are confined to executions where the bug");
  std::puts("   actually interleaved; the stale-value detector is blind");
  std::puts("   here because an unlocked region has no protected reads");
  std::puts("   whose values could outlive a critical section.");
  std::puts(" * Race-free PgSQL: every race/atomicity detector is silent;");
  std::puts("   the stale-value detector flags the read-then-publish");
  std::puts("   idiom it was designed to question — the same code shape");
  std::puts("   behind SVD's residual over-long-CU false positives");
  std::puts("   (Section 5.2). Each family's blind spot is different.");
  std::puts(" * Lock-free counter: the race families flood (every CAS is");
  std::puts("   an unannotated race); SVD reports an order of magnitude");
  std::puts("   less — only contended-retry chains — because successful");
  std::puts("   CAS attempts are serializable CUs. Annotation-freedom");
  std::puts("   pays off exactly where annotations do not exist.");
  return 0;
}
