//===- bench/sec73_overheads.cpp - Reproduces Section 7.3 (time/space) -----===//
//
// Paper: Section 7.3 "Overheads" — SVD slows the simulator down by up
// to 65x and roughly doubles its memory for some programs; the cost is
// dominated by per-instruction dependence tracking. This
// google-benchmark binary measures bare execution versus execution
// under each detector on the PgSQL and MySQL analogs, and reports the
// detector's extra memory as a counter.
//
//===----------------------------------------------------------------------===//

#include "analysis/AccessTable.h"
#include "analysis/AtomicProof.h"
#include "race/HappensBefore.h"
#include "race/Lockset.h"
#include "svd/OnlineSvd.h"
#include "vm/Machine.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace svd;

namespace {

workloads::Workload makeWorkload(int Which) {
  workloads::WorkloadParams P;
  P.Threads = 4;
  P.Iterations = 60;
  P.WorkPadding = 40;
  P.TouchOneIn = 4;
  switch (Which) {
  case 1:
    return workloads::mysqlPrepared(P);
  case 2:
    return workloads::lockedCounters(P);
  case 3:
    return workloads::tidSlab(P);
  default:
    return workloads::pgsqlOltp(P);
  }
}

vm::MachineConfig machineConfig() {
  vm::MachineConfig MC;
  MC.SchedSeed = 7;
  MC.MinTimeslice = 1;
  MC.MaxTimeslice = 4;
  return MC;
}

void reportSteps(benchmark::State &State, uint64_t StepsPerIter) {
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(StepsPerIter), benchmark::Counter::kIsRate);
}

void BM_Bare(benchmark::State &State) {
  workloads::Workload W = makeWorkload(static_cast<int>(State.range(0)));
  uint64_t Steps = 0;
  for (auto _ : State) {
    vm::Machine M(W.Program, machineConfig());
    M.run();
    Steps = M.steps();
  }
  reportSteps(State, Steps * State.iterations());
}

void BM_OnlineSvd(benchmark::State &State) {
  workloads::Workload W = makeWorkload(static_cast<int>(State.range(0)));
  uint64_t Steps = 0;
  size_t Bytes = 0;
  for (auto _ : State) {
    vm::Machine M(W.Program, machineConfig());
    detect::OnlineSvd Svd(W.Program);
    M.addObserver(&Svd);
    M.run();
    Steps = M.steps();
    Bytes = Svd.approxMemoryBytes();
  }
  reportSteps(State, Steps * State.iterations());
  State.counters["detector_MB"] =
      static_cast<double>(Bytes) / (1024.0 * 1024.0);
}

struct AccessCounter : vm::ExecutionObserver {
  uint64_t Accesses = 0;
  void onLoad(const vm::EventCtx &, isa::Addr, isa::Word) override {
    ++Accesses;
  }
  void onStore(const vm::EventCtx &, isa::Addr, isa::Word) override {
    ++Accesses;
  }
};

void BM_OnlineSvdFiltered(benchmark::State &State) {
  // SVD with the static access table: provably-thread-local accesses
  // skip the FSM/block-set work while reports stay bit-identical
  // (tests/AnalysisTest.cpp pins that). filtered_pct is the fraction of
  // dynamic accesses that took the fast path.
  workloads::Workload W = makeWorkload(static_cast<int>(State.range(0)));
  analysis::AccessTable Table = analysis::buildAccessTable(W.Program);
  uint64_t Steps = 0;
  size_t Bytes = 0;
  uint64_t Filtered = 0, Accesses = 0;
  for (auto _ : State) {
    vm::Machine M(W.Program, machineConfig());
    detect::OnlineSvdConfig Cfg;
    Cfg.Access = &Table;
    detect::OnlineSvd Svd(W.Program, Cfg);
    AccessCounter Counter;
    M.addObserver(&Svd);
    M.addObserver(&Counter);
    M.run();
    Steps = M.steps();
    Bytes = Svd.approxMemoryBytes();
    Filtered = Svd.filteredAccesses();
    Accesses = Counter.Accesses;
  }
  reportSteps(State, Steps * State.iterations());
  State.counters["detector_MB"] =
      static_cast<double>(Bytes) / (1024.0 * 1024.0);
  State.counters["filtered_pct"] =
      Accesses == 0 ? 0.0
                    : 100.0 * static_cast<double>(Filtered) /
                          static_cast<double>(Accesses);
}

void BM_OnlineSvdPruned(benchmark::State &State) {
  // SVD with both static proofs: the access table's thread-local
  // filter plus the CU atomicity proofs (prove-and-prune). pruned_pct
  // is the fraction of dynamic accesses skipped because they sit in a
  // ProvenAtomic unit; reports stay bit-identical (the PruneDiff test
  // pins that across every suite).
  workloads::Workload W = makeWorkload(static_cast<int>(State.range(0)));
  analysis::AccessTable Table = analysis::buildAccessTable(W.Program);
  analysis::CuProofs Proofs = analysis::proveAtomicCus(W.Program);
  uint64_t Steps = 0;
  size_t Bytes = 0;
  uint64_t Filtered = 0, Pruned = 0, Accesses = 0;
  for (auto _ : State) {
    vm::Machine M(W.Program, machineConfig());
    detect::OnlineSvdConfig Cfg;
    Cfg.Access = &Table;
    Cfg.Proofs = &Proofs;
    detect::OnlineSvd Svd(W.Program, Cfg);
    AccessCounter Counter;
    M.addObserver(&Svd);
    M.addObserver(&Counter);
    M.run();
    Steps = M.steps();
    Bytes = Svd.approxMemoryBytes();
    Filtered = Svd.filteredAccesses();
    Pruned = Svd.prunedAccesses();
    Accesses = Counter.Accesses;
  }
  reportSteps(State, Steps * State.iterations());
  State.counters["detector_MB"] =
      static_cast<double>(Bytes) / (1024.0 * 1024.0);
  State.counters["filtered_pct"] =
      Accesses == 0 ? 0.0
                    : 100.0 * static_cast<double>(Filtered) /
                          static_cast<double>(Accesses);
  State.counters["pruned_pct"] =
      Accesses == 0 ? 0.0
                    : 100.0 * static_cast<double>(Pruned) /
                          static_cast<double>(Accesses);
}

void BM_HappensBefore(benchmark::State &State) {
  workloads::Workload W = makeWorkload(static_cast<int>(State.range(0)));
  uint64_t Steps = 0;
  size_t Bytes = 0;
  for (auto _ : State) {
    vm::Machine M(W.Program, machineConfig());
    race::HappensBeforeDetector Hb(W.Program);
    M.addObserver(&Hb);
    M.run();
    Steps = M.steps();
    Bytes = Hb.approxMemoryBytes();
  }
  reportSteps(State, Steps * State.iterations());
  State.counters["detector_MB"] =
      static_cast<double>(Bytes) / (1024.0 * 1024.0);
}

void BM_Lockset(benchmark::State &State) {
  workloads::Workload W = makeWorkload(static_cast<int>(State.range(0)));
  uint64_t Steps = 0;
  for (auto _ : State) {
    vm::Machine M(W.Program, machineConfig());
    race::LocksetDetector Ls(W.Program);
    M.addObserver(&Ls);
    M.run();
    Steps = M.steps();
  }
  reportSteps(State, Steps * State.iterations());
}

} // namespace

// Arg 0 = PgSQL, 1 = MySQL, 2 = LockedCounters, 3 = TidSlab.
BENCHMARK(BM_Bare)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlineSvd)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlineSvdFiltered)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OnlineSvdPruned)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HappensBefore)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Lockset)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
